//! Fleet configuration: host presets, VM flavors, churn/failure/admission
//! knobs, and the scheduler choice replicated on every host.

use mem_model::EngineSelect;
use numa_topo::{presets, Topology};
use sim_core::{SimDuration, SimError};
use workloads::{hungry, npb, speccpu, WorkloadSpec};
use xen_sim::{CreditPolicy, SchedPolicy, VmConfig};

const GB: u64 = 1024 * 1024 * 1024;

/// The scheduler replicated on every host of the fleet. A subset of the
/// experiment crate's scheduler list: the fleet sweep compares the paper's
/// baseline, vProbe, and the degradation-hardened vProbe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FleetScheduler {
    Credit,
    VProbe,
    /// vProbe with the graceful-degradation layer (PR 2) — the variant
    /// meant to survive fleet-scale fault injection.
    VProbeGd,
}

impl FleetScheduler {
    pub fn name(self) -> &'static str {
        match self {
            FleetScheduler::Credit => "Credit",
            FleetScheduler::VProbe => "vProbe",
            FleetScheduler::VProbeGd => "vProbe-GD",
        }
    }

    /// Instantiate the per-host policy (same construction as the
    /// experiments runner uses for the single-machine figures).
    pub fn policy(self, num_nodes: usize, _seed: u64) -> Box<dyn SchedPolicy> {
        match self {
            FleetScheduler::Credit => Box::new(CreditPolicy::new()),
            FleetScheduler::VProbe => {
                Box::new(vprobe::variants::vprobe(num_nodes, vprobe::Bounds::default()))
            }
            FleetScheduler::VProbeGd => {
                Box::new(vprobe::variants::vprobe_gd(num_nodes, vprobe::Bounds::default()))
            }
        }
    }

    pub fn parse(s: &str) -> Result<Self, SimError> {
        match s.to_ascii_lowercase().as_str() {
            "credit" => Ok(FleetScheduler::Credit),
            "vprobe" => Ok(FleetScheduler::VProbe),
            "vprobe-gd" | "vprobegd" | "gd" => Ok(FleetScheduler::VProbeGd),
            _ => Err(SimError::UnknownName(format!(
                "scheduler '{s}' (known: credit, vprobe, vprobe-gd)"
            ))),
        }
    }
}

/// Hardware generations a fleet can mix. Each maps to a `numa-topo` preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HostPreset {
    /// The paper's testbed: 2 nodes × 4 cores, 12 GB per node.
    XeonE5620,
    /// A larger box: 4 nodes × 8 cores.
    FourSocket32,
    /// A single-node (UMA) quad-core.
    UmaQuad,
}

impl HostPreset {
    pub fn name(self) -> &'static str {
        match self {
            HostPreset::XeonE5620 => "xeon-e5620",
            HostPreset::FourSocket32 => "4s32c",
            HostPreset::UmaQuad => "uma-quad",
        }
    }

    pub fn topology(self) -> Topology {
        match self {
            HostPreset::XeonE5620 => presets::xeon_e5620(),
            HostPreset::FourSocket32 => presets::four_socket_32core(),
            HostPreset::UmaQuad => presets::uma_quad(),
        }
    }

    pub fn parse(s: &str) -> Result<Self, SimError> {
        match s.to_ascii_lowercase().as_str() {
            "xeon-e5620" | "xeon" => Ok(HostPreset::XeonE5620),
            "4s32c" | "four-socket" => Ok(HostPreset::FourSocket32),
            "uma-quad" | "uma" => Ok(HostPreset::UmaQuad),
            _ => Err(SimError::UnknownName(format!(
                "host preset '{s}' (known: xeon-e5620, 4s32c, uma-quad)"
            ))),
        }
    }
}

/// A VM shape the fleet can admit: sizing plus the guest workload.
#[derive(Debug, Clone)]
pub struct VmFlavor {
    pub name: &'static str,
    pub vcpus: usize,
    pub mem_bytes: u64,
    pub workloads: Vec<WorkloadSpec>,
    pub weight: u32,
}

impl VmFlavor {
    /// The default catalog: a memory-hungry database shape, a mid-size
    /// batch-compute shape, and a small web shape. Sized so several fit on
    /// the paper's 24 GB testbed host.
    pub fn catalog() -> Vec<VmFlavor> {
        vec![
            VmFlavor {
                name: "db",
                vcpus: 4,
                mem_bytes: 6 * GB,
                workloads: vec![speccpu::soplex(); 2],
                weight: 256,
            },
            VmFlavor {
                name: "batch",
                vcpus: 4,
                mem_bytes: 4 * GB,
                workloads: vec![npb::lu()],
                weight: 256,
            },
            VmFlavor {
                name: "web",
                vcpus: 2,
                mem_bytes: 2 * GB,
                workloads: vec![hungry::hungry_loop()],
                weight: 256,
            },
        ]
    }

    /// Build the `xen-sim` VM description for fleet VM `id` of this flavor.
    /// Names encode the fleet-wide id so per-VM metrics stay attributable
    /// after migrations.
    pub fn vm_config(&self, id: u64) -> VmConfig {
        let mut cfg = VmConfig::new(
            format!("{}-{id}", self.name),
            self.vcpus,
            self.mem_bytes,
            mem_model::AllocPolicy::MostFree,
            self.workloads.clone(),
        );
        cfg.weight = self.weight;
        cfg
    }
}

/// VM arrival/departure churn, in fleet-wide units per epoch.
#[derive(Debug, Clone, Copy)]
pub struct ChurnConfig {
    /// Poisson rate of new-VM arrivals per epoch across the whole fleet.
    pub arrivals_per_epoch: f64,
    /// Per-VM probability of departing at each epoch boundary.
    pub departure_rate: f64,
}

impl ChurnConfig {
    pub fn none() -> Self {
        ChurnConfig {
            arrivals_per_epoch: 0.0,
            departure_rate: 0.0,
        }
    }
}

/// Host/rack failure model and inter-host migration faults.
#[derive(Debug, Clone, Copy)]
pub struct FailureConfig {
    /// Per-host, per-epoch crash probability (independent failures).
    pub host_crash_rate: f64,
    /// Per-rack, per-epoch probability that the whole rack goes down
    /// together (correlated failure domain: power feed, ToR switch).
    pub rack_crash_rate: f64,
    /// Hosts per rack (the correlated failure domain size).
    pub rack_size: usize,
    /// Mean epochs a crashed host stays down (exponential, minimum 1).
    pub recovery_epochs_mean: f64,
    /// Probability that an accepted inter-host live migration fails after
    /// the copy started (the VM returns to the queue and retries).
    pub migration_fail_rate: f64,
    /// Probability that a migration's copy phase runs at half bandwidth
    /// (doubling its copy epochs).
    pub migration_delay_rate: f64,
    /// Live-migration copy bandwidth per epoch; a VM occupies the wire for
    /// `ceil(mem_bytes / this)` epochs before it lands. Zero means the
    /// copy is instantaneous.
    pub copy_bandwidth_bytes_per_epoch: u64,
}

impl FailureConfig {
    pub fn none() -> Self {
        FailureConfig {
            host_crash_rate: 0.0,
            rack_crash_rate: 0.0,
            rack_size: 8,
            recovery_epochs_mean: 5.0,
            migration_fail_rate: 0.0,
            migration_delay_rate: 0.0,
            copy_bandwidth_bytes_per_epoch: 8 * GB,
        }
    }
}

/// Placement/admission controller knobs.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Placement retries before a queued VM is shed.
    pub max_retries: u32,
    /// Base retry backoff in epochs; doubles per retry.
    pub backoff_epochs: u64,
    /// Queue residency limit: a VM still unplaced after this many epochs is
    /// shed (recorded, never silently dropped).
    pub queue_timeout_epochs: u64,
    /// VCPU overcommit factor for admission (the paper's own setups run
    /// 3 × 8 VCPUs on 8 PCPUs, i.e. 3×).
    pub cpu_overcommit: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_retries: 3,
            backoff_epochs: 1,
            queue_timeout_epochs: 20,
            cpu_overcommit: 3.0,
        }
    }
}

/// Full description of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    pub num_hosts: usize,
    /// Hardware mix: host `i` uses `presets[i % presets.len()]`.
    pub presets: Vec<HostPreset>,
    pub scheduler: FleetScheduler,
    pub seed: u64,
    /// Epochs to simulate; fleet wall time = `epochs × epoch_len`.
    pub epochs: u64,
    /// One epoch = one sampling period on every host.
    pub epoch_len: SimDuration,
    /// VMs pre-placed on each host before epoch 0 (flavors cycle through
    /// the catalog in fleet-wide VM-id order).
    pub initial_vms_per_host: usize,
    pub flavors: Vec<VmFlavor>,
    pub churn: ChurnConfig,
    pub failures: FailureConfig,
    pub admission: AdmissionConfig,
    /// Per-host PMU/migration fault injection rate
    /// ([`sim_core::FaultConfig::uniform`]); 0 = clean hosts.
    pub host_fault_rate: f64,
    /// Seed for per-host fault streams (host `i` uses `fault_seed + i`).
    pub fault_seed: u64,
    /// Event-horizon macro-stepping on every host (byte-identical either
    /// way; off only for bisection).
    pub macro_step: bool,
    /// Memory-engine implementation on every host (default the exact
    /// incremental engine; `Approx` trades bounded model error for speed,
    /// `Reference` pins the frozen pre-rewrite solver).
    pub engine: EngineSelect,
    /// Perf introspection on every host machine (work-avoidance counters,
    /// macro-batch histograms; see `xen_sim::perf`). Observation only —
    /// the report and every other output stay byte-identical.
    pub perf: bool,
    /// SLO budget for evacuation latency, in seconds: the burn-rate series
    /// in the provenance rollup reports each landed evacuation's latency
    /// as a fraction of this budget. Purely observational — never gates a
    /// placement decision.
    pub slo_evac_budget_s: f64,
}

impl FleetConfig {
    /// A quiet fleet: no churn, no failures, no fault injection.
    pub fn new(num_hosts: usize, scheduler: FleetScheduler) -> Self {
        FleetConfig {
            num_hosts,
            presets: vec![HostPreset::XeonE5620],
            scheduler,
            seed: 42,
            epochs: 10,
            epoch_len: SimDuration::from_secs(1),
            initial_vms_per_host: 2,
            flavors: VmFlavor::catalog(),
            churn: ChurnConfig::none(),
            failures: FailureConfig::none(),
            admission: AdmissionConfig::default(),
            host_fault_rate: 0.0,
            fault_seed: 1,
            macro_step: true,
            engine: EngineSelect::default(),
            perf: false,
            slo_evac_budget_s: 60.0,
        }
    }

    /// The preset for host `index`.
    pub fn preset_for(&self, index: usize) -> HostPreset {
        self.presets[index % self.presets.len()]
    }

    /// The rack (failure domain) of host `index`.
    pub fn rack_of(&self, index: usize) -> usize {
        index / self.failures.rack_size.max(1)
    }

    pub fn num_racks(&self) -> usize {
        if self.num_hosts == 0 {
            0
        } else {
            self.rack_of(self.num_hosts - 1) + 1
        }
    }

    pub fn validate(&self) -> Result<(), SimError> {
        if self.num_hosts == 0 {
            return Err(SimError::InvalidConfig("fleet has no hosts".into()));
        }
        if self.presets.is_empty() {
            return Err(SimError::InvalidConfig("fleet has no host presets".into()));
        }
        if self.flavors.is_empty() {
            return Err(SimError::InvalidConfig("fleet has no VM flavors".into()));
        }
        if self.epochs == 0 {
            return Err(SimError::InvalidConfig("fleet runs zero epochs".into()));
        }
        if self.epoch_len.is_zero() {
            return Err(SimError::InvalidConfig("zero epoch length".into()));
        }
        if self.failures.rack_size == 0 {
            return Err(SimError::InvalidConfig("zero rack size".into()));
        }
        if self.failures.recovery_epochs_mean <= 0.0 {
            return Err(SimError::InvalidConfig(
                "recovery_epochs_mean must be positive".into(),
            ));
        }
        for rate in [
            self.churn.departure_rate,
            self.failures.host_crash_rate,
            self.failures.rack_crash_rate,
            self.failures.migration_fail_rate,
            self.failures.migration_delay_rate,
            self.host_fault_rate,
        ] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(SimError::InvalidConfig(format!(
                    "probability {rate} outside [0, 1]"
                )));
            }
        }
        if self.churn.arrivals_per_epoch < 0.0 {
            return Err(SimError::InvalidConfig(
                "arrivals_per_epoch must be non-negative".into(),
            ));
        }
        if self.admission.cpu_overcommit <= 0.0 {
            return Err(SimError::InvalidConfig(
                "cpu_overcommit must be positive".into(),
            ));
        }
        if self.slo_evac_budget_s <= 0.0 || !self.slo_evac_budget_s.is_finite() {
            return Err(SimError::InvalidConfig(
                "slo_evac_budget_s must be positive".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        FleetConfig::new(4, FleetScheduler::VProbe).validate().unwrap();
    }

    #[test]
    fn bad_rates_rejected() {
        let mut cfg = FleetConfig::new(4, FleetScheduler::Credit);
        cfg.failures.host_crash_rate = 1.5;
        assert!(cfg.validate().is_err());
        let mut cfg = FleetConfig::new(4, FleetScheduler::Credit);
        cfg.churn.arrivals_per_epoch = -1.0;
        assert!(cfg.validate().is_err());
        assert!(FleetConfig::new(0, FleetScheduler::Credit).validate().is_err());
    }

    #[test]
    fn racks_partition_hosts() {
        let mut cfg = FleetConfig::new(20, FleetScheduler::Credit);
        cfg.failures.rack_size = 8;
        assert_eq!(cfg.rack_of(0), 0);
        assert_eq!(cfg.rack_of(7), 0);
        assert_eq!(cfg.rack_of(8), 1);
        assert_eq!(cfg.num_racks(), 3);
    }

    #[test]
    fn presets_cycle() {
        let mut cfg = FleetConfig::new(5, FleetScheduler::Credit);
        cfg.presets = vec![HostPreset::XeonE5620, HostPreset::FourSocket32];
        assert_eq!(cfg.preset_for(0), HostPreset::XeonE5620);
        assert_eq!(cfg.preset_for(1), HostPreset::FourSocket32);
        assert_eq!(cfg.preset_for(4), HostPreset::XeonE5620);
    }

    #[test]
    fn scheduler_and_preset_parse() {
        assert_eq!(FleetScheduler::parse("vprobe-gd").unwrap(), FleetScheduler::VProbeGd);
        assert_eq!(FleetScheduler::parse("Credit").unwrap(), FleetScheduler::Credit);
        assert!(FleetScheduler::parse("brm").is_err());
        assert_eq!(HostPreset::parse("uma").unwrap(), HostPreset::UmaQuad);
        assert!(HostPreset::parse("pdp11").is_err());
    }

    #[test]
    fn flavors_build_valid_vm_configs() {
        for (i, f) in VmFlavor::catalog().iter().enumerate() {
            let cfg = f.vm_config(i as u64);
            cfg.validate().unwrap();
            assert!(cfg.name.contains(&i.to_string()));
        }
    }

    #[test]
    fn policies_instantiate() {
        for s in [FleetScheduler::Credit, FleetScheduler::VProbe, FleetScheduler::VProbeGd] {
            assert!(!s.policy(2, 1).name().is_empty());
        }
    }
}
