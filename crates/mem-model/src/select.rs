//! Engine selection: which solve implementation a machine runs.
//!
//! Three implementations share one public behaviour:
//!
//! * [`EngineSelect::Exact`] — the data-oriented incremental
//!   [`MemoryEngine`](crate::MemoryEngine) in exact mode, byte-identical
//!   to the original engine (the default);
//! * [`EngineSelect::Approx`] — the same engine with quantized intensity
//!   keys and a fixed-point tolerance ([`EngineMode::Approx`]), faster on
//!   noisy per-quantum runs at a documented bounded model error;
//! * [`EngineSelect::Reference`] — the frozen pre-rewrite
//!   [`ReferenceEngine`](crate::reference::ReferenceEngine), kept for CI
//!   byte-diffs, bisection, and the equivalence test matrix.
//!
//! [`AnyEngine`] is the enum the hypervisor simulator holds; dispatch is a
//! single predictable branch per call, negligible next to a solve.

use crate::engine::{
    ApproxParams, ContentionSnapshot, EngineMode, EnginePerf, MemoryEngine, QuantumUsage,
    VcpuQuantumResult,
};
use crate::reference::ReferenceEngine;
use numa_topo::Topology;
use sim_core::SimDuration;

/// Which engine implementation to run (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineSelect {
    /// Incremental SoA engine, byte-identical output (the default).
    #[default]
    Exact,
    /// Incremental SoA engine with approximate arithmetic (default
    /// [`ApproxParams`]); bounded model error, not byte-identical.
    Approx,
    /// The frozen pre-rewrite engine.
    Reference,
}

impl EngineSelect {
    /// Parse the CLI/scenario spelling (`exact` | `approx` | `reference`).
    pub fn parse(s: &str) -> Option<EngineSelect> {
        match s {
            "exact" => Some(EngineSelect::Exact),
            "approx" => Some(EngineSelect::Approx),
            "reference" => Some(EngineSelect::Reference),
            _ => None,
        }
    }

    /// The CLI/scenario spelling.
    pub fn name(self) -> &'static str {
        match self {
            EngineSelect::Exact => "exact",
            EngineSelect::Approx => "approx",
            EngineSelect::Reference => "reference",
        }
    }
}

/// A memory engine of either implementation, with the shared call surface
/// the hypervisor simulator uses.
// One engine lives per machine for a whole run and is never moved after
// construction, so the variant size gap costs nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum AnyEngine {
    Soa(MemoryEngine),
    Reference(ReferenceEngine),
}

impl AnyEngine {
    /// Build the selected engine for a topology with default calibration.
    pub fn new(topo: &Topology, select: EngineSelect) -> Self {
        match select {
            EngineSelect::Exact => AnyEngine::Soa(MemoryEngine::new(topo)),
            EngineSelect::Approx => AnyEngine::Soa(MemoryEngine::with_mode(
                topo,
                EngineMode::Approx(ApproxParams::default()),
            )),
            EngineSelect::Reference => AnyEngine::Reference(ReferenceEngine::new(topo)),
        }
    }

    pub fn num_nodes(&self) -> usize {
        match self {
            AnyEngine::Soa(e) => e.num_nodes(),
            AnyEngine::Reference(e) => e.num_nodes(),
        }
    }

    pub fn contention(&self) -> ContentionSnapshot {
        match self {
            AnyEngine::Soa(e) => e.contention(),
            AnyEngine::Reference(e) => e.contention(),
        }
    }

    /// See [`MemoryEngine::step_batch`].
    pub fn step_batch(
        &mut self,
        quantum: SimDuration,
        usages: &[QuantumUsage],
        max_quanta: u64,
    ) -> (&[VcpuQuantumResult], u64) {
        match self {
            AnyEngine::Soa(e) => e.step_batch(quantum, usages, max_quanta),
            AnyEngine::Reference(e) => e.step_batch(quantum, usages, max_quanta),
        }
    }

    /// Work-avoidance counters (see [`MemoryEngine::perf`]). The frozen
    /// reference engine predates the avoidance machinery and reports
    /// all-zero counters.
    pub fn perf(&self) -> EnginePerf {
        match self {
            AnyEngine::Soa(e) => e.perf(),
            AnyEngine::Reference(_) => EnginePerf::default(),
        }
    }

    /// See [`MemoryEngine::last_step_stationary`].
    pub fn last_step_stationary(&self) -> bool {
        match self {
            AnyEngine::Soa(e) => e.last_step_stationary(),
            AnyEngine::Reference(e) => e.last_step_stationary(),
        }
    }

    /// See [`MemoryEngine::take_results`].
    pub fn take_results(&mut self) -> Vec<VcpuQuantumResult> {
        match self {
            AnyEngine::Soa(e) => e.take_results(),
            AnyEngine::Reference(e) => e.take_results(),
        }
    }

    /// See [`MemoryEngine::put_back_results`].
    pub fn put_back_results(&mut self, results: Vec<VcpuQuantumResult>) {
        match self {
            AnyEngine::Soa(e) => e.put_back_results(results),
            AnyEngine::Reference(e) => e.put_back_results(results),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for s in [EngineSelect::Exact, EngineSelect::Approx, EngineSelect::Reference] {
            assert_eq!(EngineSelect::parse(s.name()), Some(s));
        }
        assert_eq!(EngineSelect::parse("turbo"), None);
    }

    #[test]
    fn default_is_exact() {
        assert_eq!(EngineSelect::default(), EngineSelect::Exact);
    }
}
