//! Latency composition parameters.
//!
//! Converts the hardware description (local DRAM latency, interconnect hop
//! latency) plus the dynamic contention multipliers into the cycle cost of
//! one LLC miss, the quantity the execution engine charges per miss.


/// Static latency parameters for composing access costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyParams {
    /// Cycles for an LLC hit (beyond the core pipeline), Nehalem-class ~40.
    pub llc_hit_cycles: f64,
    /// Core clock frequency in MHz, to convert ns to cycles.
    pub freq_mhz: u32,
}

impl LatencyParams {
    pub fn new(freq_mhz: u32) -> Self {
        assert!(freq_mhz > 0, "frequency must be nonzero");
        LatencyParams {
            llc_hit_cycles: 40.0,
            freq_mhz,
        }
    }

    /// Convert nanoseconds to core cycles.
    pub fn ns_to_cycles(&self, ns: f64) -> f64 {
        ns * self.freq_mhz as f64 / 1_000.0
    }

    /// Cycle cost of one LLC miss that lands on DRAM `local_ns` away, with
    /// the IMC of the home node inflated by `imc_mult`, plus — for remote
    /// accesses — an interconnect hop of `hop_ns` inflated by `qpi_mult`.
    pub fn miss_cycles(
        &self,
        local_ns: f64,
        imc_mult: f64,
        remote_hop_ns: Option<f64>,
        qpi_mult: f64,
    ) -> f64 {
        let dram = self.ns_to_cycles(local_ns) * imc_mult;
        match remote_hop_ns {
            Some(hop) => dram + self.ns_to_cycles(hop) * qpi_mult,
            None => dram,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_to_cycles_at_2400mhz() {
        let p = LatencyParams::new(2_400);
        assert!((p.ns_to_cycles(65.0) - 156.0).abs() < 1e-9);
    }

    #[test]
    fn remote_miss_costs_more_than_local() {
        let p = LatencyParams::new(2_400);
        let local = p.miss_cycles(65.0, 1.0, None, 1.0);
        let remote = p.miss_cycles(65.0, 1.0, Some(40.0), 1.0);
        assert!(remote > local);
        assert!((remote - local - p.ns_to_cycles(40.0)).abs() < 1e-9);
    }

    #[test]
    fn contention_scales_components_independently() {
        let p = LatencyParams::new(2_400);
        let base = p.miss_cycles(65.0, 1.0, Some(40.0), 1.0);
        let imc_loaded = p.miss_cycles(65.0, 2.0, Some(40.0), 1.0);
        let qpi_loaded = p.miss_cycles(65.0, 1.0, Some(40.0), 2.0);
        assert!(imc_loaded > base && qpi_loaded > base);
        assert!((imc_loaded - base - p.ns_to_cycles(65.0)).abs() < 1e-9);
        assert!((qpi_loaded - base - p.ns_to_cycles(40.0)).abs() < 1e-9);
    }
}
