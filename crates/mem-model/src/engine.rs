//! Per-quantum execution resolution.
//!
//! [`MemoryEngine::step`] is the simulator's performance model: given which
//! VCPU ran on which node this quantum (and with what behavioural profile),
//! it computes how many instructions each executed and how its memory
//! accesses distributed over nodes. The hypervisor simulator calls it once
//! per quantum and feeds the results to the virtual PMU.
//!
//! The model composes:
//!
//! * per-socket LLC sharing → per-VCPU miss rate ([`crate::llc`]);
//! * per-node IMC queueing → DRAM latency multiplier ([`crate::imc`]);
//! * per-node-pair interconnect queueing → hop multiplier ([`crate::qpi`]);
//! * latency composition into an effective CPI.
//!
//! Latency multipliers and offered demand depend on each other (higher
//! latency throttles instruction rate, which lowers demand), so each
//! quantum solves that fixed point by damped iteration — a lagged update
//! oscillates between idle and saturated when the workload is near the
//! knee of the queueing curve.

use crate::curve::MissCurve;
use crate::imc::ImcModel;
use crate::latency::LatencyParams;
use crate::llc::{LlcDemand, LlcModel, LlcOccupancy, LlcScratch};
use crate::qpi::QpiModel;
use numa_topo::{NodeId, Topology};
use sim_core::SimDuration;

/// Behavioural profile of whatever a VCPU is currently executing.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessProfile {
    /// LLC references per thousand retired instructions (paper's RPTI).
    pub rpti: f64,
    /// Cycles per instruction with a perfect LLC (core + L1/L2 effects).
    pub base_cpi: f64,
    /// Miss-rate-vs-occupancy curve.
    pub miss_curve: MissCurve,
    /// Memory-level parallelism: average number of outstanding cache
    /// misses the workload sustains. Streaming codes overlap many misses
    /// (4-8); pointer chasers serialize them (~1-2). Stall cycles per miss
    /// are `latency / mlp`.
    pub mlp: f64,
    /// Fraction of memory accesses landing on each node; must sum to 1.
    pub node_access_dist: Vec<f64>,
}

impl AccessProfile {
    /// A profile that performs no memory accesses (idle/hungry loop body).
    pub fn cpu_only(base_cpi: f64, num_nodes: usize) -> Self {
        AccessProfile {
            rpti: 0.0,
            base_cpi,
            miss_curve: MissCurve::flat(0.0),
            mlp: 1.0,
            node_access_dist: vec![0.0; num_nodes],
        }
    }
}

/// One VCPU's share of the quantum, as scheduled by the hypervisor.
///
/// The profile is borrowed: the hypervisor caches one profile per guest
/// thread and phase, and `step` runs every quantum, so an owned profile
/// would mean two heap allocations per running VCPU per quantum.
#[derive(Debug, Clone)]
pub struct QuantumUsage<'a> {
    /// Caller-chosen identifier, echoed in the result (the VCPU id).
    pub key: u64,
    /// Node whose PCPU ran this VCPU.
    pub node: NodeId,
    /// Fraction of the quantum actually run, `(0, 1]`.
    pub runtime_share: f64,
    /// What the VCPU executed.
    pub profile: &'a AccessProfile,
    /// Momentary intensity factor applied to the profile's RPTI (the
    /// hypervisor's burstiness noise); 1.0 for steady behaviour.
    pub rpti_scale: f64,
    /// Post-migration cache-warmup penalty: multiplies the miss rate
    /// (clamped to the curve's `max_miss`); 1.0 when warm.
    pub cold_miss_boost: f64,
    /// Scheduler/monitoring time stolen from this VCPU this quantum, in
    /// microseconds (PMU sampling cost, BRM's global lock, …).
    pub overhead_us: f64,
}

impl QuantumUsage<'_> {
    /// The effective LLC references per thousand instructions this
    /// quantum: the profile's RPTI under the momentary intensity factor.
    fn rpti(&self) -> f64 {
        self.profile.rpti * self.rpti_scale
    }
}

/// What one VCPU accomplished during the quantum.
#[derive(Debug, Clone, PartialEq)]
pub struct VcpuQuantumResult {
    pub key: u64,
    pub instructions: u64,
    pub llc_refs: u64,
    pub llc_misses: u64,
    /// Misses served by the node the VCPU ran on.
    pub local_accesses: u64,
    /// Misses served by any other node.
    pub remote_accesses: u64,
    /// Misses per home node (the PMU's `N(vc, i)` page-access proxy).
    pub node_accesses: Vec<u64>,
    /// Realized cycles-per-instruction including all stalls.
    pub effective_cpi: f64,
    /// Realized miss rate after sharing and warmup effects.
    pub miss_rate: f64,
}

/// Dynamic contention levels, exposed for metrics and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentionSnapshot {
    /// Latency multiplier of each node's IMC.
    pub imc_multiplier: Vec<f64>,
    /// Hop multiplier per node pair, row-major `n×n` (diagonal 1.0).
    pub qpi_multiplier: Vec<f64>,
}

/// Calibration knobs translating nameplate hardware numbers into the
/// behaviour a memory-bound workload actually sees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineParams {
    /// Fraction of nameplate IMC bandwidth sustainable under the mixed
    /// random/streaming traffic of the modeled workloads (Nehalem-EP
    /// sustains roughly 40-50 % of peak on non-ideal access patterns).
    pub sustained_imc_frac: f64,
    /// Fraction of raw QPI bandwidth available to data after protocol and
    /// coherence overhead.
    pub sustained_qpi_frac: f64,
    /// DRAM traffic per LLC miss, in bytes: the 64-byte demand line plus
    /// prefetcher overfetch and writebacks.
    pub traffic_per_miss_bytes: f64,
    /// Extra home-IMC work for a remote access (snoop + forward) relative
    /// to a local one.
    pub remote_imc_overhead: f64,
}

impl Default for EngineParams {
    fn default() -> Self {
        EngineParams {
            sustained_imc_frac: 0.45,
            sustained_qpi_frac: 0.22,
            traffic_per_miss_bytes: 115.0,
            remote_imc_overhead: 1.5,
        }
    }
}

/// Reusable buffers for [`MemoryEngine::step`]. `step` runs once per
/// simulated quantum (thousands of times per second of simulated time), so
/// its working vectors are kept across calls instead of reallocated.
#[derive(Debug, Clone, Default)]
struct StepScratch {
    per_node: Vec<Vec<usize>>,
    miss_rate: Vec<f64>,
    demands: Vec<LlcDemand>,
    node_demand_bytes: Vec<f64>,
    pair_traffic_bytes: Vec<f64>,
    node_accesses: Vec<u64>,
    /// Per-usage values that do not change across fixed-point rounds,
    /// hoisted out of the round loop (identical expressions, so identical
    /// bits — pinned by the golden machine test).
    inv: Vec<UsageInv>,
    /// Flat list of each usage's nonzero access-distribution entries;
    /// `nz_start[i]..nz_start[i+1]` indexes usage `i`'s slice.
    nz: Vec<NzFrac>,
    nz_start: Vec<u32>,
    /// Per-round miss-latency matrix, row-major `[run_node][home]`:
    /// `LatencyParams::miss_cycles` is a pure function of the home node,
    /// the pair and the current multipliers, so it is evaluated n² times
    /// per round instead of once per usage × home.
    miss_cycles_matrix: Vec<f64>,
    llc_occ: Vec<LlcOccupancy>,
    llc_scratch: LlcScratch,
}

/// Round-invariant per-usage terms of the fixed-point solve.
#[derive(Debug, Clone, Copy, Default)]
struct UsageInv {
    run_node: u32,
    /// `rpti / 1000`.
    refs_per_instr: f64,
    /// Post-sharing, post-warmup miss rate.
    m: f64,
    /// `(1 - m) * llc_hit_cycles`.
    hit_term: f64,
    mlp: f64,
    base_cpi: f64,
    /// Usable core cycles this quantum.
    cycles: f64,
}

/// One nonzero entry of a usage's node-access distribution.
#[derive(Debug, Clone, Copy)]
struct NzFrac {
    /// Row-major `run_node * n + home` pair index.
    pair: u32,
    home: u32,
    frac: f64,
}

/// The composed memory-system model for one machine.
#[derive(Debug, Clone)]
pub struct MemoryEngine {
    params: EngineParams,
    num_nodes: usize,
    llc: Vec<LlcModel>,
    imc: Vec<ImcModel>,
    local_latency_ns: Vec<f64>,
    qpi: Vec<Option<QpiModel>>, // per pair, row-major
    hop_latency_ns: Vec<f64>,   // per pair, row-major
    latency: LatencyParams,
    line_bytes: u32,
    freq_mhz: u32,
    imc_mult: Vec<f64>,
    qpi_mult: Vec<f64>, // per pair, row-major
    scratch: StepScratch,
    /// Pooled results of the most recent solve (element buffers reused
    /// across quanta instead of reallocated).
    results: Vec<VcpuQuantumResult>,
    /// Whether the most recent solve left the contention multipliers
    /// bitwise unchanged — i.e. the fixed point has converged, so an
    /// identical-input step would reproduce identical results.
    stationary: bool,
}

impl MemoryEngine {
    /// Build the engine from a validated topology with default calibration.
    pub fn new(topo: &Topology) -> Self {
        MemoryEngine::with_params(topo, EngineParams::default())
    }

    /// Build with explicit calibration parameters.
    pub fn with_params(topo: &Topology, params: EngineParams) -> Self {
        let n = topo.num_nodes();
        let mut llc = Vec::with_capacity(n);
        let mut imc = Vec::with_capacity(n);
        let mut local_latency_ns = Vec::with_capacity(n);
        let mut line_bytes = 64;
        for node in topo.nodes() {
            let cfg = topo.node_config(node);
            llc.push(LlcModel::new(cfg.llc.size_bytes));
            imc.push(ImcModel::new(
                ((cfg.imc_bandwidth_bytes_per_s as f64) * params.sustained_imc_frac) as u64,
            ));
            local_latency_ns.push(cfg.local_latency_ns);
            line_bytes = cfg.llc.line_bytes;
        }
        let mut qpi = vec![None; n * n];
        let mut hop_latency_ns = vec![0.0; n * n];
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a == b {
                    continue;
                }
                // Parallel links between the pair share the traffic.
                let links: Vec<_> = topo
                    .links()
                    .iter()
                    .filter(|l| l.connects(a, b))
                    .collect();
                if let Some(first) = links.first() {
                    let idx = a.index() * n + b.index();
                    qpi[idx] = Some(QpiModel::new(
                        ((first.bandwidth_bytes_per_s as f64) * params.sustained_qpi_frac)
                            as u64,
                        links.len() as u32,
                    ));
                    hop_latency_ns[idx] = first.hop_latency_ns;
                }
            }
        }
        MemoryEngine {
            params,
            num_nodes: n,
            llc,
            imc,
            local_latency_ns,
            qpi,
            hop_latency_ns,
            latency: LatencyParams::new(topo.freq_mhz()),
            line_bytes,
            freq_mhz: topo.freq_mhz(),
            imc_mult: vec![1.0; n],
            qpi_mult: vec![1.0; n * n],
            scratch: StepScratch::default(),
            results: Vec::new(),
            stationary: false,
        }
    }

    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    pub fn contention(&self) -> ContentionSnapshot {
        ContentionSnapshot {
            imc_multiplier: self.imc_mult.clone(),
            qpi_multiplier: self.qpi_mult.clone(),
        }
    }

    /// Resolve one quantum. `usages` lists every VCPU that ran (at most one
    /// per PCPU per share of the quantum; the hypervisor may split a
    /// quantum between two VCPUs by passing two entries with shares
    /// summing to ≤ 1 for that PCPU).
    pub fn step(&mut self, quantum: SimDuration, usages: &[QuantumUsage]) -> Vec<VcpuQuantumResult> {
        self.step_ref(quantum, usages).to_vec()
    }

    /// Resolve up to `max_quanta` consecutive identical quanta with one
    /// solve. The step is performed once; if it left the contention fixed
    /// point stationary (bitwise-unchanged multipliers), re-running it with
    /// the same inputs would reproduce the exact same trajectory, so the
    /// returned results stand for all `max_quanta` quanta and the caller
    /// may apply them `max_quanta` times in closed form. Otherwise only one
    /// quantum is covered. Returns `(results, quanta_covered)`.
    pub fn step_batch(
        &mut self,
        quantum: SimDuration,
        usages: &[QuantumUsage],
        max_quanta: u64,
    ) -> (&[VcpuQuantumResult], u64) {
        self.step_ref(quantum, usages);
        let covered = if self.stationary { max_quanta.max(1) } else { 1 };
        (&self.results, covered)
    }

    /// Whether the most recent solve was stationary (see
    /// [`MemoryEngine::step_batch`]).
    pub fn last_step_stationary(&self) -> bool {
        self.stationary
    }

    /// Results of the most recent solve.
    pub fn last_results(&self) -> &[VcpuQuantumResult] {
        &self.results
    }

    /// Detach the pooled results buffer so a caller can apply it while
    /// holding other borrows; hand it back via
    /// [`MemoryEngine::put_back_results`] to keep the pooling.
    pub fn take_results(&mut self) -> Vec<VcpuQuantumResult> {
        std::mem::take(&mut self.results)
    }

    /// Return a buffer taken with [`MemoryEngine::take_results`].
    pub fn put_back_results(&mut self, results: Vec<VcpuQuantumResult>) {
        self.results = results;
    }

    /// Allocation-free form of [`MemoryEngine::step`]: the returned slice
    /// borrows pooled per-engine buffers that the next step overwrites.
    pub fn step_ref(
        &mut self,
        quantum: SimDuration,
        usages: &[QuantumUsage],
    ) -> &[VcpuQuantumResult] {
        let quantum_us = quantum.as_micros() as f64;
        assert!(quantum_us > 0.0, "zero quantum");

        // Detach the scratch buffers so the solve can borrow `&self`.
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut results = std::mem::take(&mut self.results);

        // 1. LLC sharing per node.
        scratch.per_node.resize(self.num_nodes, Vec::new());
        for members in scratch.per_node.iter_mut() {
            members.clear();
        }
        for (i, u) in usages.iter().enumerate() {
            debug_assert!(
                (u.profile.node_access_dist.len()) == self.num_nodes,
                "profile node distribution has wrong arity"
            );
            scratch.per_node[u.node.index()].push(i);
        }
        scratch.miss_rate.clear();
        scratch.miss_rate.resize(usages.len(), 0.0);
        for (node, members) in scratch.per_node.iter().enumerate() {
            if members.is_empty() {
                continue;
            }
            scratch.demands.clear();
            scratch.demands.extend(members.iter().map(|&i| LlcDemand {
                rpti: usages[i].rpti(),
                curve: usages[i].profile.miss_curve,
                runtime_share: usages[i].runtime_share,
            }));
            self.llc[node].occupancies_into(
                &scratch.demands,
                &mut scratch.llc_occ,
                &mut scratch.llc_scratch,
            );
            for (&i, o) in members.iter().zip(scratch.llc_occ.iter()) {
                let boosted = o.miss_rate * usages[i].cold_miss_boost.max(1.0);
                scratch.miss_rate[i] =
                    boosted.min(usages[i].profile.miss_curve.max_miss.max(o.miss_rate));
            }
        }

        // Hoist everything that does not change across fixed-point rounds.
        // Each expression is composed exactly as the in-loop original so
        // the bits match (pinned by the golden machine test).
        scratch.inv.clear();
        scratch.nz.clear();
        scratch.nz_start.clear();
        for (i, u) in usages.iter().enumerate() {
            scratch.nz_start.push(scratch.nz.len() as u32);
            let run_node = u.node.index();
            for (home, &frac) in u.profile.node_access_dist.iter().enumerate() {
                if frac <= 0.0 {
                    continue;
                }
                scratch.nz.push(NzFrac {
                    pair: (run_node * self.num_nodes + home) as u32,
                    home: home as u32,
                    frac,
                });
            }
            let m = scratch.miss_rate[i];
            let usable_us = (quantum_us * u.runtime_share - u.overhead_us).max(0.0);
            scratch.inv.push(UsageInv {
                run_node: run_node as u32,
                refs_per_instr: u.rpti() / 1_000.0,
                m,
                hit_term: (1.0 - m) * self.latency.llc_hit_cycles,
                mlp: u.profile.mlp.max(1.0),
                base_cpi: u.profile.base_cpi,
                cycles: usable_us * self.freq_mhz as f64,
            });
        }
        scratch.nz_start.push(scratch.nz.len() as u32);

        // 2. Solve the contention fixed point: instruction rates depend on
        // latency multipliers, which depend on the demand those rates
        // generate. Damped iteration from the previous quantum's state.
        // Every round overwrites the pooled results, so the solve may stop
        // at the first round whose update leaves all multipliers bitwise
        // unchanged: with identical multipliers every further round
        // recomputes identical demand, identical targets, and identical
        // per-VCPU results, so the final round's output is already in hand.
        let quantum_s = quantum_us / 1e6;
        let mut imc_mult = self.imc_mult.clone();
        let mut qpi_mult = self.qpi_mult.clone();
        let mut round = 0;
        loop {
            scratch.node_demand_bytes.clear();
            scratch.node_demand_bytes.resize(self.num_nodes, 0.0);
            scratch.pair_traffic_bytes.clear();
            scratch
                .pair_traffic_bytes
                .resize(self.num_nodes * self.num_nodes, 0.0);

            // Miss latency per (run, home) pair at the round's contention
            // levels: a pure function of the pair, so n² evaluations
            // replace one per usage × home.
            scratch.miss_cycles_matrix.clear();
            for run_node in 0..self.num_nodes {
                for (home, &home_mult) in imc_mult.iter().enumerate() {
                    let pair = run_node * self.num_nodes + home;
                    let hop = if home == run_node {
                        None
                    } else {
                        Some(self.hop_latency_ns[pair])
                    };
                    scratch.miss_cycles_matrix.push(self.latency.miss_cycles(
                        self.local_latency_ns[home],
                        home_mult,
                        hop,
                        qpi_mult[pair],
                    ));
                }
            }

            for (i, u) in usages.iter().enumerate() {
                let inv = &scratch.inv[i];
                let run_node = inv.run_node as usize;
                let nz = &scratch.nz[scratch.nz_start[i] as usize..scratch.nz_start[i + 1] as usize];

                // Average cycle cost of a miss over the access distribution.
                let mut miss_cycles = 0.0;
                for e in nz {
                    miss_cycles += e.frac * scratch.miss_cycles_matrix[e.pair as usize];
                }

                // Outstanding misses overlap: each miss (and L3 hit) stalls
                // the core for latency / MLP cycles on average.
                // The saturating `as u64` cast is `.floor().max(0.0) as
                // u64` (truncation, zero for negatives/NaN, saturation at
                // the top) without the libm floor call.
                let cpi =
                    inv.base_cpi + inv.refs_per_instr * (inv.hit_term + inv.m * miss_cycles) / inv.mlp;
                let instructions = (inv.cycles / cpi) as u64;
                let llc_refs = round_to_u64(instructions as f64 * inv.refs_per_instr);
                let llc_misses = round_to_u64(llc_refs as f64 * inv.m);

                scratch.node_accesses.clear();
                scratch.node_accesses.resize(self.num_nodes, 0);
                let mut assigned = 0u64;
                for e in nz {
                    let c = (llc_misses as f64 * e.frac) as u64;
                    scratch.node_accesses[e.home as usize] = c;
                    assigned += c;
                }
                // Give rounding remainder to the run node (arbitrary but local).
                scratch.node_accesses[run_node] += llc_misses - assigned;

                let local_accesses = scratch.node_accesses[run_node];
                let remote_accesses = llc_misses - local_accesses;

                // Accumulate demand. Each miss moves more than its demand
                // line (prefetch, writeback); remote misses additionally tax
                // the home IMC with coherence work and cross the
                // interconnect. Only nonzero rows contribute; every
                // accumulator slot still receives its adds in the reference
                // order, and skipped adds are exact `+0.0` no-ops.
                let _ = self.line_bytes;
                for e in nz {
                    let home = e.home as usize;
                    if home == run_node {
                        continue;
                    }
                    let bytes =
                        scratch.node_accesses[home] as f64 * self.params.traffic_per_miss_bytes;
                    scratch.node_demand_bytes[home] += bytes * self.params.remote_imc_overhead;
                    scratch.pair_traffic_bytes[run_node * self.num_nodes + home] += bytes;
                    scratch.pair_traffic_bytes[home * self.num_nodes + run_node] += bytes;
                }
                let local_bytes =
                    scratch.node_accesses[run_node] as f64 * self.params.traffic_per_miss_bytes;
                scratch.node_demand_bytes[run_node] += local_bytes;

                if i < results.len() {
                    let out = &mut results[i];
                    out.key = u.key;
                    out.instructions = instructions;
                    out.llc_refs = llc_refs;
                    out.llc_misses = llc_misses;
                    out.local_accesses = local_accesses;
                    out.remote_accesses = remote_accesses;
                    out.node_accesses.clear();
                    out.node_accesses.extend_from_slice(&scratch.node_accesses);
                    out.effective_cpi = cpi;
                    out.miss_rate = inv.m;
                } else {
                    results.push(VcpuQuantumResult {
                        key: u.key,
                        instructions,
                        llc_refs,
                        llc_misses,
                        local_accesses,
                        remote_accesses,
                        node_accesses: scratch.node_accesses.clone(),
                        effective_cpi: cpi,
                        miss_rate: inv.m,
                    });
                }
            }

            // Recompute multipliers from this round's demand and relax.
            let damp = if round == 0 { 1.0 } else { 0.5 };
            let mut changed = false;
            for (node, mult) in imc_mult.iter_mut().enumerate() {
                let target =
                    self.imc[node].latency_multiplier(scratch.node_demand_bytes[node] / quantum_s);
                let before = *mult;
                *mult += damp * (target - *mult);
                changed |= *mult != before;
            }
            for a in 0..self.num_nodes {
                for b in 0..self.num_nodes {
                    let idx = a * self.num_nodes + b;
                    let target = match &self.qpi[idx] {
                        Some(q) => {
                            q.latency_multiplier(scratch.pair_traffic_bytes[idx] / quantum_s)
                        }
                        None => 1.0,
                    };
                    let before = qpi_mult[idx];
                    qpi_mult[idx] += damp * (target - qpi_mult[idx]);
                    changed |= qpi_mult[idx] != before;
                }
            }
            round += 1;
            if round == FIXED_POINT_ROUNDS || !changed {
                break;
            }
        }
        results.truncate(usages.len());
        self.stationary = imc_mult == self.imc_mult && qpi_mult == self.qpi_mult;
        self.imc_mult = imc_mult;
        self.qpi_mult = qpi_mult;
        self.scratch = scratch;
        self.results = results;
        &self.results
    }
}

/// Damped fixed-point iterations per quantum: enough for convergence at
/// the queueing knee, cheap enough to run every quantum. The solve exits
/// early once a round leaves every multiplier bitwise unchanged — each
/// remaining round would reproduce exactly the same state.
const FIXED_POINT_ROUNDS: usize = 4;

/// `x.round() as u64` without the libm call. For `x < 2^53` the cast
/// truncates exactly and `x - trunc(x)` is exact (Sterbenz: `x < 2t` for
/// `t ≥ 1`, trivially for `t = 0`), so adding the half-up carry reproduces
/// round-half-away-from-zero bit for bit; negatives and NaN hit the
/// saturating-cast zero exactly like the reference, and the huge/infinite
/// tail falls back to the reference expression itself.
#[inline]
fn round_to_u64(x: f64) -> u64 {
    if x >= 9_007_199_254_740_992.0 {
        return x.round() as u64;
    }
    let t = x as u64;
    t + u64::from(x - t as f64 >= 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_topo::presets;

    const MB: u64 = 1024 * 1024;

    fn engine() -> MemoryEngine {
        MemoryEngine::new(&presets::xeon_e5620())
    }

    fn quantum() -> SimDuration {
        SimDuration::from_millis(1)
    }

    fn profile(rpti: f64, ws_mb: u64, dist: Vec<f64>) -> AccessProfile {
        AccessProfile {
            rpti,
            base_cpi: 1.0,
            miss_curve: MissCurve::new(0.05, 0.6, ws_mb * MB),
            mlp: 1.0,
            node_access_dist: dist,
        }
    }

    fn usage<'a>(key: u64, node: u16, p: &'a AccessProfile) -> QuantumUsage<'a> {
        QuantumUsage {
            key,
            node: NodeId::new(node),
            runtime_share: 1.0,
            profile: p,
            rpti_scale: 1.0,
            cold_miss_boost: 1.0,
            overhead_us: 0.0,
        }
    }

    #[test]
    fn cpu_only_workload_runs_at_base_cpi() {
        let mut e = engine();
        let p = AccessProfile::cpu_only(1.0, 2);
        let r = e.step(quantum(), &[usage(1, 0, &p)]);
        // 1 ms at 2400 MHz and CPI 1 => 2.4 M instructions.
        assert_eq!(r[0].instructions, 2_400_000);
        assert_eq!(r[0].llc_refs, 0);
        assert_eq!(r[0].llc_misses, 0);
    }

    #[test]
    fn local_beats_remote() {
        let p = profile(20.0, 64, vec![1.0, 0.0]);
        let mut e = engine();
        let local = e.step(quantum(), &[usage(1, 0, &p)])[0].instructions;
        let mut e = engine();
        let remote = e.step(quantum(), &[usage(1, 1, &p)])[0].instructions;
        assert!(
            local as f64 > remote as f64 * 1.05,
            "local={local} remote={remote}"
        );
    }

    #[test]
    fn remote_accesses_follow_distribution() {
        let mut e = engine();
        let p = profile(20.0, 64, vec![0.25, 0.75]);
        let r = &e.step(quantum(), &[usage(1, 0, &p)])[0];
        assert!(r.llc_misses > 0);
        let remote_frac = r.remote_accesses as f64 / r.llc_misses as f64;
        assert!((remote_frac - 0.75).abs() < 0.01, "remote_frac={remote_frac}");
        assert_eq!(
            r.node_accesses.iter().sum::<u64>(),
            r.llc_misses,
            "per-node accesses must sum to misses"
        );
    }

    #[test]
    fn llc_contention_slows_fitting_workload() {
        // A fitting workload alone on node0 vs sharing node0 with thrashers.
        let fit = profile(15.0, 6, vec![1.0, 0.0]);
        let thrash = AccessProfile {
            rpti: 22.0,
            base_cpi: 1.0,
            miss_curve: MissCurve::new(0.5, 0.7, 64 * MB),
            mlp: 1.0,
            node_access_dist: vec![1.0, 0.0],
        };
        let mut e = engine();
        let alone = e.step(quantum(), &[usage(1, 0, &fit)])[0].instructions;
        let mut e = engine();
        let shared = e.step(
            quantum(),
            &[
                usage(1, 0, &fit),
                usage(2, 0, &thrash),
                usage(3, 0, &thrash),
            ],
        )[0]
            .instructions;
        assert!(
            alone as f64 > shared as f64 * 1.2,
            "alone={alone} shared={shared}"
        );
    }

    #[test]
    fn contention_state_lags_one_quantum() {
        let mut e = engine();
        let heavy = profile(30.0, 128, vec![1.0, 0.0]);
        assert_eq!(e.contention().imc_multiplier, vec![1.0, 1.0]);
        e.step(
            quantum(),
            &[
                usage(1, 0, &heavy),
                usage(2, 0, &heavy),
                usage(3, 0, &heavy),
                usage(4, 0, &heavy),
            ],
        );
        let snap = e.contention();
        assert!(snap.imc_multiplier[0] > 1.0, "imc should be loaded: {snap:?}");
        assert_eq!(snap.imc_multiplier[1], 1.0);
    }

    #[test]
    fn qpi_contention_builds_from_remote_traffic() {
        let mut e = engine();
        // Four VCPUs on node1 all hitting node0 memory.
        let p = profile(30.0, 128, vec![1.0, 0.0]);
        let usages: Vec<_> = (0..4).map(|i| usage(i, 1, &p)).collect();
        e.step(quantum(), &usages);
        let snap = e.contention();
        assert!(snap.qpi_multiplier[1] > 1.0, "qpi loaded: {snap:?}");
    }

    #[test]
    fn overhead_reduces_instructions() {
        let mut e = engine();
        let p = AccessProfile::cpu_only(1.0, 2);
        let mut u = usage(1, 0, &p);
        u.overhead_us = 500.0; // half the quantum
        let r = e.step(quantum(), &[u]);
        assert_eq!(r[0].instructions, 1_200_000);
    }

    #[test]
    fn overhead_larger_than_quantum_yields_zero() {
        let mut e = engine();
        let p = AccessProfile::cpu_only(1.0, 2);
        let mut u = usage(1, 0, &p);
        u.overhead_us = 5_000.0;
        let r = e.step(quantum(), &[u]);
        assert_eq!(r[0].instructions, 0);
    }

    #[test]
    fn cold_boost_raises_miss_rate_up_to_max() {
        let fit = profile(15.0, 6, vec![1.0, 0.0]);
        let mut e = engine();
        let warm = e.step(quantum(), &[usage(1, 0, &fit)])[0].miss_rate;
        let mut e = engine();
        let mut u = usage(1, 0, &fit);
        u.cold_miss_boost = 4.0;
        let cold = e.step(quantum(), &[u])[0].miss_rate;
        assert!(cold > warm);
        assert!(cold <= 0.6 + 1e-12, "clamped to max_miss");
    }

    #[test]
    fn runtime_share_scales_output() {
        let mut e = engine();
        let p = AccessProfile::cpu_only(1.0, 2);
        let mut u = usage(1, 0, &p);
        u.runtime_share = 0.5;
        let r = e.step(quantum(), &[u]);
        assert_eq!(r[0].instructions, 1_200_000);
    }

    #[test]
    fn empty_step_is_fine() {
        let mut e = engine();
        assert!(e.step(quantum(), &[]).is_empty());
        assert_eq!(e.contention().imc_multiplier, vec![1.0, 1.0]);
    }
}
