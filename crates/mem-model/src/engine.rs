//! Per-quantum execution resolution.
//!
//! [`MemoryEngine::step`] is the simulator's performance model: given which
//! VCPU ran on which node this quantum (and with what behavioural profile),
//! it computes how many instructions each executed and how its memory
//! accesses distributed over nodes. The hypervisor simulator calls it once
//! per quantum and feeds the results to the virtual PMU.
//!
//! The model composes:
//!
//! * per-socket LLC sharing → per-VCPU miss rate ([`crate::llc`]);
//! * per-node IMC queueing → DRAM latency multiplier ([`crate::imc`]);
//! * per-node-pair interconnect queueing → hop multiplier ([`crate::qpi`]);
//! * latency composition into an effective CPI.
//!
//! Latency multipliers and offered demand depend on each other (higher
//! latency throttles instruction rate, which lowers demand), so each
//! quantum solves that fixed point by damped iteration — a lagged update
//! oscillates between idle and saturated when the workload is near the
//! knee of the queueing curve.
//!
//! # Data-oriented incremental solve
//!
//! The engine keeps its hot state as struct-of-arrays ([`HotState`]): one
//! dense array per input field and per derived term, mirroring the last
//! step's inputs bit for bit. Every `step` first diffs the incoming usages
//! against that mirror, which drives three levels of work avoidance — all
//! bit-exact, because each skipped computation is a pure function of
//! inputs that were verified (bitwise) unchanged:
//!
//! * **per-node LLC dirty bits** — a node's shared-cache occupancy solve
//!   re-runs only when some co-runner on that node changed its intensity,
//!   runtime share, or miss curve; otherwise the cached per-slot raw miss
//!   rates stand (the solve is a pure per-node function of exactly those
//!   inputs);
//! * **per-slot derived/output reuse** — a slot whose inputs *and* solved
//!   miss rate are bitwise unchanged keeps its derived columns, and —
//!   when the stored outputs are known consistent with the warm-start
//!   multipliers — skips the first fixed-point round entirely, replaying
//!   its stored demand contribution instead (same values, same order:
//!   same accumulator bits);
//! * **whole-step skip** — when every input is bitwise unchanged *and* the
//!   previous solve was stationary (the damped update left every
//!   multiplier bitwise unchanged), re-running would replay the identical
//!   trajectory, so the cached outputs are rematerialized without solving
//!   (the same argument [`MemoryEngine::step_batch`] already relied on).
//!
//! Every solve warm-starts from the previous quantum's multipliers, as the
//! original engine did. Exact mode ([`EngineMode::Exact`], the default) is
//! byte-identical to [`crate::reference::ReferenceEngine`] — pinned by
//! equivalence proptests here and a scheduler×seed×fault byte-equality
//! matrix at machine level. [`EngineMode::Approx`] additionally quantizes
//! intensity inputs *and* solved miss rates onto a relative grid (so the
//! dirty bits, the per-slot replay, and a small per-node solve memo all
//! fire under continuous intensity noise) and exits the fixed point early
//! on a relative tolerance, snapping the sub-tolerance nudge back so the
//! multipliers stay piecewise-constant; both reassociate rounding and are
//! therefore opt-in behind the machine config flag, with a documented
//! tolerance test.

use crate::curve::{rel_grid_mask, MissCurve};
use crate::imc::ImcModel;
use crate::latency::LatencyParams;
use crate::llc::{fingerprint_u64, LlcDemand, LlcModel, LlcOccupancy, LlcScratch, LlcSolveCache};
use crate::qpi::QpiModel;
use numa_topo::{NodeId, Topology};
use sim_core::SimDuration;

/// Behavioural profile of whatever a VCPU is currently executing.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessProfile {
    /// LLC references per thousand retired instructions (paper's RPTI).
    pub rpti: f64,
    /// Cycles per instruction with a perfect LLC (core + L1/L2 effects).
    pub base_cpi: f64,
    /// Miss-rate-vs-occupancy curve.
    pub miss_curve: MissCurve,
    /// Memory-level parallelism: average number of outstanding cache
    /// misses the workload sustains. Streaming codes overlap many misses
    /// (4-8); pointer chasers serialize them (~1-2). Stall cycles per miss
    /// are `latency / mlp`.
    pub mlp: f64,
    /// Fraction of memory accesses landing on each node; must sum to 1.
    pub node_access_dist: Vec<f64>,
}

impl AccessProfile {
    /// A profile that performs no memory accesses (idle/hungry loop body).
    pub fn cpu_only(base_cpi: f64, num_nodes: usize) -> Self {
        AccessProfile {
            rpti: 0.0,
            base_cpi,
            miss_curve: MissCurve::flat(0.0),
            mlp: 1.0,
            node_access_dist: vec![0.0; num_nodes],
        }
    }
}

/// One VCPU's share of the quantum, as scheduled by the hypervisor.
///
/// The profile is borrowed: the hypervisor caches one profile per guest
/// thread and phase, and `step` runs every quantum, so an owned profile
/// would mean two heap allocations per running VCPU per quantum.
#[derive(Debug, Clone)]
pub struct QuantumUsage<'a> {
    /// Caller-chosen identifier, echoed in the result (the VCPU id).
    pub key: u64,
    /// Node whose PCPU ran this VCPU.
    pub node: NodeId,
    /// Fraction of the quantum actually run, `(0, 1]`.
    pub runtime_share: f64,
    /// What the VCPU executed.
    pub profile: &'a AccessProfile,
    /// Momentary intensity factor applied to the profile's RPTI (the
    /// hypervisor's burstiness noise); 1.0 for steady behaviour.
    pub rpti_scale: f64,
    /// Post-migration cache-warmup penalty: multiplies the miss rate
    /// (clamped to the curve's `max_miss`); 1.0 when warm.
    pub cold_miss_boost: f64,
    /// Scheduler/monitoring time stolen from this VCPU this quantum, in
    /// microseconds (PMU sampling cost, BRM's global lock, …).
    pub overhead_us: f64,
}

impl QuantumUsage<'_> {
    /// The effective LLC references per thousand instructions this
    /// quantum: the profile's RPTI under the momentary intensity factor.
    pub(crate) fn rpti(&self) -> f64 {
        self.profile.rpti * self.rpti_scale
    }
}

/// What one VCPU accomplished during the quantum.
#[derive(Debug, Clone, PartialEq)]
pub struct VcpuQuantumResult {
    pub key: u64,
    pub instructions: u64,
    pub llc_refs: u64,
    pub llc_misses: u64,
    /// Misses served by the node the VCPU ran on.
    pub local_accesses: u64,
    /// Misses served by any other node.
    pub remote_accesses: u64,
    /// Misses per home node (the PMU's `N(vc, i)` page-access proxy).
    pub node_accesses: Vec<u64>,
    /// Realized cycles-per-instruction including all stalls.
    pub effective_cpi: f64,
    /// Realized miss rate after sharing and warmup effects.
    pub miss_rate: f64,
}

/// Dynamic contention levels, exposed for metrics and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentionSnapshot {
    /// Latency multiplier of each node's IMC.
    pub imc_multiplier: Vec<f64>,
    /// Hop multiplier per node pair, row-major `n×n` (diagonal 1.0).
    pub qpi_multiplier: Vec<f64>,
}

/// Calibration knobs translating nameplate hardware numbers into the
/// behaviour a memory-bound workload actually sees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineParams {
    /// Fraction of nameplate IMC bandwidth sustainable under the mixed
    /// random/streaming traffic of the modeled workloads (Nehalem-EP
    /// sustains roughly 40-50 % of peak on non-ideal access patterns).
    pub sustained_imc_frac: f64,
    /// Fraction of raw QPI bandwidth available to data after protocol and
    /// coherence overhead.
    pub sustained_qpi_frac: f64,
    /// DRAM traffic per LLC miss, in bytes: the 64-byte demand line plus
    /// prefetcher overfetch and writebacks.
    pub traffic_per_miss_bytes: f64,
    /// Extra home-IMC work for a remote access (snoop + forward) relative
    /// to a local one.
    pub remote_imc_overhead: f64,
}

impl Default for EngineParams {
    fn default() -> Self {
        EngineParams {
            sustained_imc_frac: 0.45,
            sustained_qpi_frac: 0.22,
            traffic_per_miss_bytes: 115.0,
            remote_imc_overhead: 1.5,
        }
    }
}

/// Arithmetic regime of the solve.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum EngineMode {
    /// Bit-identical to the pre-rewrite engine (the default). Work is
    /// skipped only where the skipped computation's inputs are bitwise
    /// unchanged, so every emitted byte matches the reference.
    #[default]
    Exact,
    /// Trades bounded model error for speed: intensity inputs snap onto a
    /// relative grid (turning continuous burstiness noise into repeats the
    /// dirty bits and solve memo can catch) and the fixed point exits once
    /// multipliers move less than a relative tolerance. Opt-in; not
    /// byte-identical to exact mode.
    Approx(ApproxParams),
}

/// Knobs for [`EngineMode::Approx`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxParams {
    /// Width of the relative intensity quantization grid, realized by
    /// mantissa truncation ([`crate::curve::quantize_rel`]). 0.05 keeps
    /// five mantissa bits: effective RPTI snaps onto a geometric ladder
    /// with ≤ 3.2 % spacing — a perturbation comparable to the ±σ
    /// intensity noise it is absorbing. 0 disables quantization.
    pub intensity_grid: f64,
    /// Relative multiplier movement below which a fixed-point round counts
    /// as converged; the sub-tolerance nudge is rolled back, so the stored
    /// multipliers lag the moving fixed point by at most this much. 0
    /// keeps the exact bitwise-unchanged criterion.
    pub fp_tolerance: f64,
}

impl Default for ApproxParams {
    fn default() -> Self {
        ApproxParams {
            intensity_grid: 0.05,
            fp_tolerance: 0.05,
        }
    }
}

/// Struct-of-arrays hot state: the bitwise input mirror, the derived
/// round-invariant terms, the per-round output columns, and the solve
/// scratch. One array per field, indexed by usage slot; `dist` and
/// `out_node_acc` are `len × n` row-major matrices.
#[derive(Debug, Clone, Default)]
struct HotState {
    len: usize,
    quantum_us: f64,
    /// The mirror holds a real previous step (false until the first solve
    /// and after an invalidation).
    valid: bool,
    // Input mirror, diffed bitwise against each step's usages.
    key: Vec<u64>,
    node: Vec<u32>,
    share: Vec<f64>,
    /// Effective RPTI (`profile.rpti * rpti_scale`), after quantization in
    /// approx mode.
    rpti_eff: Vec<f64>,
    boost: Vec<f64>,
    overhead: Vec<f64>,
    cv_min: Vec<f64>,
    cv_max: Vec<f64>,
    cv_ws: Vec<u64>,
    mlp: Vec<f64>,
    base_cpi: Vec<f64>,
    dist: Vec<f64>,
    // Derived terms, refreshed only when their inputs changed.
    /// Raw shared-LLC miss rate per slot (pre cold-boost), the cached
    /// output of the per-node occupancy solve.
    occ_miss: Vec<f64>,
    m: Vec<f64>,
    refs_per_instr: Vec<f64>,
    hit_term: Vec<f64>,
    mlp_eff: Vec<f64>,
    /// `refs_per_instr / mlp_eff`, filled in approx mode only: hoisting
    /// the division out of the fixed-point rounds reassociates the CPI
    /// expression, so exact mode keeps dividing per round instead.
    refs_over_mlp: Vec<f64>,
    cycles: Vec<f64>,
    /// Per node: member slots in input order (the LLC solve order).
    members: Vec<Vec<u32>>,
    /// Per node: some member's LLC-relevant inputs changed since its last
    /// occupancy solve.
    node_dirty: Vec<bool>,
    /// Per slot: some input or the slot's solved miss rate changed bitwise
    /// since the stored output columns were computed. Cleared once the
    /// step's final round has (re)computed every changed slot; drives the
    /// per-slot output replay in the fixed-point rounds.
    slot_changed: Vec<bool>,
    /// Slots with nonzero effective RPTI — the only ones whose outputs can
    /// depend on the contention multipliers, and therefore the only ones
    /// the fixed-point rounds re-evaluate (see the derived pass).
    active: Vec<u32>,
    // Output columns of the most recent round (the final round survives
    // and is materialized into `VcpuQuantumResult`s once per step).
    out_instructions: Vec<u64>,
    out_cpi: Vec<f64>,
    out_refs: Vec<u64>,
    out_misses: Vec<u64>,
    out_local: Vec<u64>,
    out_remote: Vec<u64>,
    out_node_acc: Vec<u64>,
    // Solve scratch.
    cur_imc: Vec<f64>,
    cur_qpi: Vec<f64>,
    node_demand: Vec<f64>,
    pair_traffic: Vec<f64>,
    miss_cycles_matrix: Vec<f64>,
    demands: Vec<LlcDemand>,
    llc_occ: Vec<LlcOccupancy>,
    llc_scratch: LlcScratch,
    memo_miss: Vec<f64>,
    // Pre-update multipliers of the current round, kept only in approx
    // mode so a tolerance exit can discard the final sub-tolerance nudge
    // (see the fixed-point loop).
    prev_imc: Vec<f64>,
    prev_qpi: Vec<f64>,
}

/// Deterministic work-avoidance counters for the incremental engine
/// (DESIGN §16). Every field is a pure function of the simulated
/// execution — solver control flow, never wall-clock — so two runs of
/// the same seed produce bitwise-equal counters at any `--jobs`. The
/// counters are maintained unconditionally (a handful of predictable
/// integer adds per step, far below one solve) and are only *read* when
/// perf introspection asks; they appear in no default output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnginePerf {
    /// Solver invocations (`step_ref` calls).
    pub steps: u64,
    /// Steps answered entirely from cache: unchanged inputs at a
    /// stationary fixed point (the whole-step skip).
    pub whole_step_skips: u64,
    /// Per-node LLC occupancy solves actually performed.
    pub node_solves: u64,
    /// Populated nodes skipped in a changed step by a clean dirty bit.
    pub node_clean_skips: u64,
    /// [`LlcSolveCache`](crate::llc::LlcSolveCache) fingerprint hits.
    pub memo_hits: u64,
    /// Fingerprint misses (each followed by a full solve + insert).
    pub memo_misses: u64,
    /// Times a node's memo self-disabled (128-miss streak).
    pub memo_disables: u64,
    /// Slots whose round-0 demand was replayed from stored outputs
    /// instead of recomputed.
    pub replay_fires: u64,
    /// Fixed-point rounds executed, total (divide by `steps −
    /// whole_step_skips` for rounds per solving step).
    pub fp_rounds: u64,
    /// Approx-mode fixed-point exits via the tolerance test.
    pub tolerance_exits: u64,
    /// Multiplier entries whose sub-tolerance nudge was rolled back by
    /// those exits (the snap-back volume).
    pub snap_backs: u64,
}

impl EnginePerf {
    /// Memo hit rate over consulted lookups (0 when never consulted).
    pub fn memo_hit_rate(&self) -> f64 {
        let total = self.memo_hits + self.memo_misses;
        if total == 0 {
            0.0
        } else {
            self.memo_hits as f64 / total as f64
        }
    }

    /// Fraction of steps answered by the whole-step skip.
    pub fn skip_rate(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.whole_step_skips as f64 / self.steps as f64
        }
    }

    /// Mean fixed-point rounds per step that actually solved.
    pub fn rounds_per_solving_step(&self) -> f64 {
        let solving = self.steps - self.whole_step_skips;
        if solving == 0 {
            0.0
        } else {
            self.fp_rounds as f64 / solving as f64
        }
    }

    /// Add another engine's counters into this one. Summing per-host
    /// counters in host index order is the fleet aggregation primitive.
    pub fn accumulate(&mut self, o: EnginePerf) {
        self.steps += o.steps;
        self.whole_step_skips += o.whole_step_skips;
        self.node_solves += o.node_solves;
        self.node_clean_skips += o.node_clean_skips;
        self.memo_hits += o.memo_hits;
        self.memo_misses += o.memo_misses;
        self.memo_disables += o.memo_disables;
        self.replay_fires += o.replay_fires;
        self.fp_rounds += o.fp_rounds;
        self.tolerance_exits += o.tolerance_exits;
        self.snap_backs += o.snap_backs;
    }
}

/// The composed memory-system model for one machine.
#[derive(Debug, Clone)]
pub struct MemoryEngine {
    params: EngineParams,
    num_nodes: usize,
    llc: Vec<LlcModel>,
    imc: Vec<ImcModel>,
    local_latency_ns: Vec<f64>,
    qpi: Vec<Option<QpiModel>>, // per pair, row-major
    hop_latency_ns: Vec<f64>,   // per pair, row-major
    latency: LatencyParams,
    line_bytes: u32,
    freq_mhz: u32,
    imc_mult: Vec<f64>,
    qpi_mult: Vec<f64>, // per pair, row-major
    mode: EngineMode,
    /// Per-node memo of recent occupancy solves, consulted in approx mode
    /// only (exact inputs are continuous and would never repeat except
    /// consecutively, which the dirty bits already cover).
    llc_memo: Vec<LlcSolveCache>,
    hot: HotState,
    /// Pooled results of the most recent solve (element buffers reused
    /// across quanta instead of reallocated).
    results: Vec<VcpuQuantumResult>,
    /// Whether the most recent solve left the contention multipliers
    /// bitwise unchanged — i.e. the fixed point has converged, so an
    /// identical-input step would reproduce identical results.
    stationary: bool,
    /// Whether the stored output columns were computed with multipliers
    /// bitwise equal to the stored `imc_mult`/`qpi_mult` (true on a
    /// `!changed` or tolerance exit, false when the round cap fired with
    /// the last update still moving). Gates the per-slot output replay:
    /// only then does "inputs unchanged" imply "outputs unchanged".
    out_consistent: bool,
    /// Work-avoidance accounting (read via [`MemoryEngine::perf`]).
    perf: EnginePerf,
}

impl MemoryEngine {
    /// Build the engine from a validated topology with default calibration.
    pub fn new(topo: &Topology) -> Self {
        MemoryEngine::with_params(topo, EngineParams::default())
    }

    /// Build with an explicit arithmetic mode.
    pub fn with_mode(topo: &Topology, mode: EngineMode) -> Self {
        let mut e = MemoryEngine::with_params(topo, EngineParams::default());
        e.mode = mode;
        e
    }

    /// Build with explicit calibration parameters.
    pub fn with_params(topo: &Topology, params: EngineParams) -> Self {
        let n = topo.num_nodes();
        let mut llc = Vec::with_capacity(n);
        let mut imc = Vec::with_capacity(n);
        let mut local_latency_ns = Vec::with_capacity(n);
        let mut line_bytes = 64;
        for node in topo.nodes() {
            let cfg = topo.node_config(node);
            llc.push(LlcModel::new(cfg.llc.size_bytes));
            imc.push(ImcModel::new(
                ((cfg.imc_bandwidth_bytes_per_s as f64) * params.sustained_imc_frac) as u64,
            ));
            local_latency_ns.push(cfg.local_latency_ns);
            line_bytes = cfg.llc.line_bytes;
        }
        let mut qpi = vec![None; n * n];
        let mut hop_latency_ns = vec![0.0; n * n];
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a == b {
                    continue;
                }
                // Parallel links between the pair share the traffic.
                let links: Vec<_> = topo.links().iter().filter(|l| l.connects(a, b)).collect();
                if let Some(first) = links.first() {
                    let idx = a.index() * n + b.index();
                    qpi[idx] = Some(QpiModel::new(
                        ((first.bandwidth_bytes_per_s as f64) * params.sustained_qpi_frac) as u64,
                        links.len() as u32,
                    ));
                    hop_latency_ns[idx] = first.hop_latency_ns;
                }
            }
        }
        MemoryEngine {
            params,
            num_nodes: n,
            llc,
            imc,
            local_latency_ns,
            qpi,
            hop_latency_ns,
            latency: LatencyParams::new(topo.freq_mhz()),
            line_bytes,
            freq_mhz: topo.freq_mhz(),
            imc_mult: vec![1.0; n],
            qpi_mult: vec![1.0; n * n],
            mode: EngineMode::Exact,
            llc_memo: vec![LlcSolveCache::default(); n],
            hot: HotState::default(),
            results: Vec::new(),
            stationary: false,
            out_consistent: false,
            perf: EnginePerf::default(),
        }
    }

    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The engine's arithmetic mode.
    pub fn mode(&self) -> EngineMode {
        self.mode
    }

    /// Switch arithmetic mode. Invalidates the input mirror (the next step
    /// re-solves everything from the current multipliers) so cached state
    /// produced under the old mode's arithmetic can never leak into the
    /// new one.
    pub fn set_mode(&mut self, mode: EngineMode) {
        self.mode = mode;
        self.invalidate_cache();
    }

    /// Drop the incremental state: the next step diffs against nothing and
    /// performs a full solve (warm-started from the current multipliers,
    /// exactly as every step is). Exposed for tests and bisection; results
    /// are unaffected by construction, which the equivalence proptests
    /// check by invalidating at arbitrary points.
    pub fn invalidate_cache(&mut self) {
        self.hot.valid = false;
        for memo in &mut self.llc_memo {
            memo.clear();
        }
    }

    pub fn contention(&self) -> ContentionSnapshot {
        ContentionSnapshot {
            imc_multiplier: self.imc_mult.clone(),
            qpi_multiplier: self.qpi_mult.clone(),
        }
    }

    /// Resolve one quantum. `usages` lists every VCPU that ran (at most one
    /// per PCPU per share of the quantum; the hypervisor may split a
    /// quantum between two VCPUs by passing two entries with shares
    /// summing to ≤ 1 for that PCPU).
    pub fn step(&mut self, quantum: SimDuration, usages: &[QuantumUsage]) -> Vec<VcpuQuantumResult> {
        self.step_ref(quantum, usages).to_vec()
    }

    /// Resolve up to `max_quanta` consecutive identical quanta with one
    /// solve. The step is performed once; if it left the contention fixed
    /// point stationary (bitwise-unchanged multipliers), re-running it with
    /// the same inputs would reproduce the exact same trajectory, so the
    /// returned results stand for all `max_quanta` quanta and the caller
    /// may apply them `max_quanta` times in closed form. Otherwise only one
    /// quantum is covered. Returns `(results, quanta_covered)`.
    pub fn step_batch(
        &mut self,
        quantum: SimDuration,
        usages: &[QuantumUsage],
        max_quanta: u64,
    ) -> (&[VcpuQuantumResult], u64) {
        self.step_ref(quantum, usages);
        let covered = if self.stationary { max_quanta.max(1) } else { 1 };
        (&self.results, covered)
    }

    /// Whether the most recent solve was stationary (see
    /// [`MemoryEngine::step_batch`]).
    pub fn last_step_stationary(&self) -> bool {
        self.stationary
    }

    /// Cumulative work-avoidance counters for this engine's lifetime,
    /// folding in the per-node memo disable events. Deterministic; never
    /// part of the engine's outputs.
    pub fn perf(&self) -> EnginePerf {
        let mut p = self.perf;
        p.memo_disables = self.llc_memo.iter().map(LlcSolveCache::disable_events).sum();
        p
    }

    /// Results of the most recent solve.
    pub fn last_results(&self) -> &[VcpuQuantumResult] {
        &self.results
    }

    /// Detach the pooled results buffer so a caller can apply it while
    /// holding other borrows; hand it back via
    /// [`MemoryEngine::put_back_results`] to keep the pooling.
    pub fn take_results(&mut self) -> Vec<VcpuQuantumResult> {
        std::mem::take(&mut self.results)
    }

    /// Return a buffer taken with [`MemoryEngine::take_results`].
    pub fn put_back_results(&mut self, results: Vec<VcpuQuantumResult>) {
        self.results = results;
    }

    /// Allocation-free form of [`MemoryEngine::step`]: the returned slice
    /// borrows pooled per-engine buffers that the next step overwrites.
    pub fn step_ref(
        &mut self,
        quantum: SimDuration,
        usages: &[QuantumUsage],
    ) -> &[VcpuQuantumResult] {
        let quantum_us = quantum.as_micros() as f64;
        assert!(quantum_us > 0.0, "zero quantum");
        self.perf.steps += 1;
        let n = self.num_nodes;
        let (grid, fp_tol) = match self.mode {
            EngineMode::Exact => (0.0, 0.0),
            EngineMode::Approx(p) => (p.intensity_grid, p.fp_tolerance),
        };
        // Mask once per step; per-slot quantization is then two integer ops
        // (`quantize_rel` semantics without its per-call mask derivation).
        let qmask = rel_grid_mask(grid);

        // Disjoint field borrows: the solve mutates `hot`/`results` while
        // reading the model fields (`llc`, `imc`, `latency`, …) — all
        // distinct fields of `self`, so no detach/re-attach copying of the
        // (large) hot-state header block per step.
        let hot = &mut self.hot;
        let results = &mut self.results;

        // --- Diff the incoming usages against the bitwise input mirror. ---
        // `shape_same`: the (key, node) sequence is unchanged, so the
        // per-node membership and every slot's run node stand.
        let mut shape_same = hot.valid && usages.len() == hot.len;
        if shape_same {
            for (i, u) in usages.iter().enumerate() {
                if hot.key[i] != u.key || hot.node[i] != u.node.index() as u32 {
                    shape_same = false;
                    break;
                }
            }
        }
        let quantum_changed = quantum_us.to_bits() != hot.quantum_us.to_bits();
        let mut any_changed = !shape_same || quantum_changed;
        let mut dist_changed = !shape_same;
        hot.quantum_us = quantum_us;
        hot.node_dirty.resize(n, false);
        if shape_same && quantum_changed {
            // A quantum change rescales every slot's cycle budget.
            for s in hot.slot_changed.iter_mut() {
                *s = true;
            }
        }
        if !shape_same {
            let len = usages.len();
            hot.len = len;
            hot.key.resize(len, 0);
            hot.node.resize(len, 0);
            hot.share.resize(len, 0.0);
            hot.rpti_eff.resize(len, 0.0);
            hot.boost.resize(len, 0.0);
            hot.overhead.resize(len, 0.0);
            hot.cv_min.resize(len, 0.0);
            hot.cv_max.resize(len, 0.0);
            hot.cv_ws.resize(len, 0);
            hot.mlp.resize(len, 0.0);
            hot.base_cpi.resize(len, 0.0);
            hot.dist.resize(len * n, 0.0);
            hot.occ_miss.resize(len, 0.0);
            hot.m.resize(len, 0.0);
            hot.refs_per_instr.resize(len, 0.0);
            hot.hit_term.resize(len, 0.0);
            hot.mlp_eff.resize(len, 0.0);
            hot.refs_over_mlp.resize(len, 0.0);
            hot.cycles.resize(len, 0.0);
            hot.out_instructions.resize(len, 0);
            hot.out_cpi.resize(len, 0.0);
            hot.out_refs.resize(len, 0);
            hot.out_misses.resize(len, 0);
            hot.out_local.resize(len, 0);
            hot.out_remote.resize(len, 0);
            hot.out_node_acc.resize(len * n, 0);
            hot.slot_changed.clear();
            hot.slot_changed.resize(len, true);
            for d in hot.node_dirty.iter_mut() {
                *d = true;
            }
            hot.members.resize(n, Vec::new());
            for m in hot.members.iter_mut() {
                m.clear();
            }
            for (i, u) in usages.iter().enumerate() {
                debug_assert!(
                    u.profile.node_access_dist.len() == n,
                    "profile node distribution has wrong arity"
                );
                let node = u.node.index();
                hot.key[i] = u.key;
                hot.node[i] = node as u32;
                hot.members[node].push(i as u32);
                let p = u.profile;
                let c = &p.miss_curve;
                hot.share[i] = u.runtime_share;
                hot.rpti_eff[i] = quantize_bits(u.rpti(), qmask);
                hot.boost[i] = u.cold_miss_boost;
                hot.overhead[i] = u.overhead_us;
                hot.cv_min[i] = c.min_miss;
                hot.cv_max[i] = c.max_miss;
                hot.cv_ws[i] = c.ws_bytes;
                hot.mlp[i] = p.mlp;
                hot.base_cpi[i] = p.base_cpi;
                hot.dist[i * n..(i + 1) * n].copy_from_slice(&p.node_access_dist);
            }
        } else {
            for (i, u) in usages.iter().enumerate() {
                debug_assert!(
                    u.profile.node_access_dist.len() == n,
                    "profile node distribution has wrong arity"
                );
                let p = u.profile;
                let c = &p.miss_curve;
                let rpti_eff = quantize_bits(u.rpti(), qmask);
                // XOR-fold each field group into one change word: one
                // well-predicted branch per group instead of one per field.
                let llc_delta = (hot.rpti_eff[i].to_bits() ^ rpti_eff.to_bits())
                    | (hot.share[i].to_bits() ^ u.runtime_share.to_bits())
                    | (hot.cv_min[i].to_bits() ^ c.min_miss.to_bits())
                    | (hot.cv_max[i].to_bits() ^ c.max_miss.to_bits())
                    | (hot.cv_ws[i] ^ c.ws_bytes);
                if llc_delta != 0 {
                    hot.rpti_eff[i] = rpti_eff;
                    hot.share[i] = u.runtime_share;
                    hot.cv_min[i] = c.min_miss;
                    hot.cv_max[i] = c.max_miss;
                    hot.cv_ws[i] = c.ws_bytes;
                    hot.node_dirty[hot.node[i] as usize] = true;
                    hot.slot_changed[i] = true;
                    any_changed = true;
                }
                let slot_delta = (hot.boost[i].to_bits() ^ u.cold_miss_boost.to_bits())
                    | (hot.overhead[i].to_bits() ^ u.overhead_us.to_bits())
                    | (hot.mlp[i].to_bits() ^ p.mlp.to_bits())
                    | (hot.base_cpi[i].to_bits() ^ p.base_cpi.to_bits());
                if slot_delta != 0 {
                    hot.boost[i] = u.cold_miss_boost;
                    hot.overhead[i] = u.overhead_us;
                    hot.mlp[i] = p.mlp;
                    hot.base_cpi[i] = p.base_cpi;
                    hot.slot_changed[i] = true;
                    any_changed = true;
                }
                let row = &mut hot.dist[i * n..(i + 1) * n];
                for (prev, &frac) in row.iter_mut().zip(p.node_access_dist.iter()) {
                    if bits_ne(*prev, frac) {
                        *prev = frac;
                        hot.slot_changed[i] = true;
                        dist_changed = true;
                    }
                }
            }
            any_changed |= dist_changed;
        }
        hot.valid = true;

        // --- Whole-step skip: identical inputs at a converged fixed point
        // replay the identical trajectory (the `step_batch` argument), so
        // the cached final round already is this step's answer. ---
        if !any_changed && self.stationary {
            self.perf.whole_step_skips += 1;
            materialize_results(hot, results, n);
            return &self.results;
        }

        if any_changed {
            // --- LLC occupancy re-solve, dirty nodes only. The solve is a
            // pure per-node function of its members' (rpti, share, curve)
            // tuples, all verified bitwise unchanged on clean nodes. ---
            for node in 0..n {
                if !hot.node_dirty[node] || hot.members[node].is_empty() {
                    if !hot.node_dirty[node] && !hot.members[node].is_empty() {
                        self.perf.node_clean_skips += 1;
                    }
                    hot.node_dirty[node] = false;
                    continue;
                }
                hot.node_dirty[node] = false;
                let members = &hot.members[node];
                let mut memo_fp = members.len() as u64;
                let use_memo = grid > 0.0 && self.llc_memo[node].consult();
                if use_memo {
                    // Approx mode: memo the solve behind a fingerprint of
                    // the quantized member-input key (intensity noise now
                    // lands on a small set of grid points, so revisited
                    // states hit).
                    for &i in members.iter() {
                        let i = i as usize;
                        memo_fp = fingerprint_u64(memo_fp, hot.rpti_eff[i].to_bits());
                        memo_fp = fingerprint_u64(memo_fp, hot.share[i].to_bits());
                        memo_fp = fingerprint_u64(memo_fp, hot.cv_min[i].to_bits());
                        memo_fp = fingerprint_u64(memo_fp, hot.cv_max[i].to_bits());
                        memo_fp = fingerprint_u64(memo_fp, hot.cv_ws[i]);
                    }
                    if let Some(miss) = self.llc_memo[node].lookup(memo_fp) {
                        self.perf.memo_hits += 1;
                        for (&i, &m) in members.iter().zip(miss.iter()) {
                            let i = i as usize;
                            let q = quantize_bits(m, qmask);
                            if bits_ne(hot.occ_miss[i], q) {
                                hot.occ_miss[i] = q;
                                hot.slot_changed[i] = true;
                            }
                        }
                        continue;
                    }
                    self.perf.memo_misses += 1;
                }
                self.perf.node_solves += 1;
                hot.demands.clear();
                for &i in members.iter() {
                    let i = i as usize;
                    hot.demands.push(LlcDemand {
                        rpti: hot.rpti_eff[i],
                        curve: MissCurve {
                            min_miss: hot.cv_min[i],
                            max_miss: hot.cv_max[i],
                            ws_bytes: hot.cv_ws[i],
                        },
                        runtime_share: hot.share[i],
                    });
                }
                self.llc[node].occupancies_into(
                    &hot.demands,
                    &mut hot.llc_occ,
                    &mut hot.llc_scratch,
                );
                // Approx mode quantizes the solved miss rate onto the same
                // relative grid as the intensity inputs: sub-grid occupancy
                // shifts then leave a co-runner's miss rate bitwise
                // unchanged, which is what lets its outputs replay (the
                // added relative error is below the grid, on top of the
                // input quantization already documented). The exact-mode
                // mask is all ones, a bitwise identity.
                for (&i, o) in members.iter().zip(hot.llc_occ.iter()) {
                    let i = i as usize;
                    let q = quantize_bits(o.miss_rate, qmask);
                    if bits_ne(hot.occ_miss[i], q) {
                        hot.occ_miss[i] = q;
                        hot.slot_changed[i] = true;
                    }
                }
                if use_memo {
                    hot.memo_miss.clear();
                    hot.memo_miss
                        .extend(members.iter().map(|&i| hot.occ_miss[i as usize]));
                    self.llc_memo[node].insert(memo_fp, &hot.memo_miss);
                }
            }

            // --- Round-invariant derived columns. Each expression is
            // composed exactly as the reference composes it, from inputs
            // that are bitwise the reference's inputs, so the bits match.
            // Slots whose inputs and solved miss rate are all bitwise
            // unchanged would recompute identical values, so they are
            // skipped (valid in both modes — it is the same pure-function
            // argument the node dirty bits rest on). ---
            hot.active.clear();
            for i in 0..hot.len {
                if hot.rpti_eff[i] != 0.0 {
                    hot.active.push(i as u32);
                }
                if !hot.slot_changed[i] {
                    continue;
                }
                let om = hot.occ_miss[i];
                let boosted = om * hot.boost[i].max(1.0);
                let m = boosted.min(hot.cv_max[i].max(om));
                hot.m[i] = m;
                hot.refs_per_instr[i] = hot.rpti_eff[i] / 1_000.0;
                hot.hit_term[i] = (1.0 - m) * self.latency.llc_hit_cycles;
                hot.mlp_eff[i] = hot.mlp[i].max(1.0);
                if grid > 0.0 || fp_tol > 0.0 {
                    hot.refs_over_mlp[i] = hot.refs_per_instr[i] / hot.mlp_eff[i];
                }
                let usable_us = (quantum_us * hot.share[i] - hot.overhead[i]).max(0.0);
                hot.cycles[i] = usable_us * self.freq_mhz as f64;
                if hot.rpti_eff[i] == 0.0 {
                    // Zero LLC references: the miss term below is an exact
                    // `+0.0` for any finite miss cost, so this slot's CPI
                    // cannot see the contention multipliers and it offers
                    // no demand. Its outputs are round-invariant — compute
                    // them once here with a zero miss cost (same bits) and
                    // leave it out of the fixed-point rounds entirely.
                    let cpi = hot.base_cpi[i]
                        + hot.refs_per_instr[i] * (hot.hit_term[i] + hot.m[i] * 0.0)
                            / hot.mlp_eff[i];
                    let instructions = (hot.cycles[i] / cpi) as u64;
                    let llc_refs = round_to_u64(instructions as f64 * hot.refs_per_instr[i]);
                    let llc_misses = round_to_u64(llc_refs as f64 * hot.m[i]);
                    hot.out_instructions[i] = instructions;
                    hot.out_cpi[i] = cpi;
                    hot.out_refs[i] = llc_refs;
                    hot.out_misses[i] = llc_misses;
                    hot.out_local[i] = 0;
                    hot.out_remote[i] = 0;
                    hot.out_node_acc[i * n..(i + 1) * n].fill(0);
                }
            }
        }
        // (`!any_changed && !stationary`: everything above is cached; only
        // the fixed point below still moves.)

        // --- Solve the contention fixed point: instruction rates depend on
        // latency multipliers, which depend on the demand those rates
        // generate. Damped iteration, warm-started from the previous
        // quantum's multipliers. Every round overwrites the output columns,
        // so the solve may stop at the first round whose update leaves all
        // multipliers bitwise unchanged: with identical multipliers every
        // further round recomputes identical demand, identical targets, and
        // identical per-VCPU results, so the final round's output is
        // already in hand. ---
        let quantum_s = quantum_us / 1e6;
        hot.cur_imc.clear();
        hot.cur_imc.extend_from_slice(&self.imc_mult);
        hot.cur_qpi.clear();
        hot.cur_qpi.extend_from_slice(&self.qpi_mult);
        hot.node_demand.resize(n, 0.0);
        hot.pair_traffic.resize(n * n, 0.0);
        hot.miss_cycles_matrix.resize(n * n, 0.0);
        // Loop-invariant mode split for the CPI expression below: LLVM
        // unswitches it, so neither variant pays a per-slot branch.
        let approx_cpi = grid > 0.0 || fp_tol > 0.0;
        // Per-slot output replay (round 0 only): when the stored outputs
        // are consistent with the warm-start multipliers, a slot whose
        // inputs and miss rate are bitwise unchanged would recompute
        // bitwise-identical outputs — so its stored row is re-offered as
        // demand (same values, same accumulation order: same bits) and the
        // body is skipped. Any later round recomputes every active slot,
        // because by then the multipliers have moved.
        let reuse_ok = self.out_consistent;
        let consistent_exit;
        let mut round = 0;
        loop {
            let replay = round == 0 && reuse_ok;
            for v in hot.node_demand.iter_mut() {
                *v = 0.0;
            }
            for v in hot.pair_traffic.iter_mut() {
                *v = 0.0;
            }

            // Miss latency per (run, home) pair at the round's contention
            // levels: a pure function of the pair, so n² evaluations
            // replace one per usage × home.
            let mut pair = 0;
            for run_node in 0..n {
                for (home, &home_mult) in hot.cur_imc.iter().enumerate() {
                    let hop = if home == run_node {
                        None
                    } else {
                        Some(self.hop_latency_ns[pair])
                    };
                    hot.miss_cycles_matrix[pair] = self.latency.miss_cycles(
                        self.local_latency_ns[home],
                        home_mult,
                        hop,
                        hot.cur_qpi[pair],
                    );
                    pair += 1;
                }
            }

            for &slot in hot.active.iter() {
                let i = slot as usize;
                let run_node = hot.node[i] as usize;
                let row = i * n;
                if replay && !hot.slot_changed[i] {
                    self.perf.replay_fires += 1;
                    // Outputs stand bitwise; re-offer the demand they
                    // generate from the stored per-home counts. The counts,
                    // the byte products, and the accumulation order all
                    // match what the full body below would produce, so the
                    // demand accumulators end up bitwise identical too.
                    for (home, &c) in hot.out_node_acc[row..row + n].iter().enumerate() {
                        if home != run_node {
                            let bytes = c as f64 * self.params.traffic_per_miss_bytes;
                            hot.node_demand[home] += bytes * self.params.remote_imc_overhead;
                            hot.pair_traffic[run_node * n + home] += bytes;
                            hot.pair_traffic[home * n + run_node] += bytes;
                        }
                    }
                    let local_bytes = hot.out_node_acc[row + run_node] as f64
                        * self.params.traffic_per_miss_bytes;
                    hot.node_demand[run_node] += local_bytes;
                    continue;
                }

                // Average cycle cost of a miss over the access distribution
                // — dense over homes, exactly as the reference composes it
                // (zero rows contribute an exact `+0.0`: every matrix entry
                // is finite).
                let dist_row = &hot.dist[row..row + n];
                let mrow = &hot.miss_cycles_matrix[run_node * n..run_node * n + n];
                let mut miss_cycles = 0.0;
                for (&frac, &mc) in dist_row.iter().zip(mrow.iter()) {
                    miss_cycles += frac * mc;
                }

                // Outstanding misses overlap: each miss (and L3 hit) stalls
                // the core for latency / MLP cycles on average.
                // The saturating `as u64` cast is `.floor().max(0.0) as
                // u64` (truncation, zero for negatives/NaN, saturation at
                // the top) without the libm floor call.
                let cpi = if approx_cpi {
                    // Reassociated (division hoisted to the derived pass);
                    // approx mode only.
                    hot.base_cpi[i]
                        + hot.refs_over_mlp[i] * (hot.hit_term[i] + hot.m[i] * miss_cycles)
                } else {
                    hot.base_cpi[i]
                        + hot.refs_per_instr[i] * (hot.hit_term[i] + hot.m[i] * miss_cycles)
                            / hot.mlp_eff[i]
                };
                let instructions = (hot.cycles[i] / cpi) as u64;
                let llc_refs = round_to_u64(instructions as f64 * hot.refs_per_instr[i]);
                let llc_misses = round_to_u64(llc_refs as f64 * hot.m[i]);

                // Scatter misses over home nodes and accumulate demand in
                // one pass, dense in home order (the reference's own
                // order; zero rows scatter a zero count and add an exact
                // `+0.0` of demand). Each miss moves more than its demand
                // line (prefetch, writeback); remote misses additionally
                // tax the home IMC with coherence work and cross the
                // interconnect. A remote home's count is final before its
                // demand add — the rounding remainder only ever lands on
                // the run node. Every row entry is (re)written, so the
                // stored rows of replayed slots above never go stale.
                let _ = self.line_bytes;
                let misses_f = llc_misses as f64;
                let mut assigned = 0u64;
                for (home, &frac) in dist_row.iter().enumerate() {
                    let c = (misses_f * frac) as u64;
                    hot.out_node_acc[row + home] = c;
                    assigned += c;
                    if home != run_node {
                        let bytes = c as f64 * self.params.traffic_per_miss_bytes;
                        hot.node_demand[home] += bytes * self.params.remote_imc_overhead;
                        hot.pair_traffic[run_node * n + home] += bytes;
                        hot.pair_traffic[home * n + run_node] += bytes;
                    }
                }
                // Give rounding remainder to the run node (arbitrary but local).
                hot.out_node_acc[row + run_node] += llc_misses - assigned;

                let local_accesses = hot.out_node_acc[row + run_node];
                let remote_accesses = llc_misses - local_accesses;
                let local_bytes =
                    hot.out_node_acc[row + run_node] as f64 * self.params.traffic_per_miss_bytes;
                hot.node_demand[run_node] += local_bytes;

                hot.out_instructions[i] = instructions;
                hot.out_cpi[i] = cpi;
                hot.out_refs[i] = llc_refs;
                hot.out_misses[i] = llc_misses;
                hot.out_local[i] = local_accesses;
                hot.out_remote[i] = remote_accesses;
            }

            // Recompute multipliers from this round's demand and relax.
            let damp = if round == 0 { 1.0 } else { 0.5 };
            let mut changed = false;
            let mut max_rel = 0.0f64;
            if fp_tol > 0.0 {
                // Approx mode keeps the pre-update multipliers so a
                // tolerance exit can discard the final nudge (below).
                hot.prev_imc.clear();
                hot.prev_imc.extend_from_slice(&hot.cur_imc);
                hot.prev_qpi.clear();
                hot.prev_qpi.extend_from_slice(&hot.cur_qpi);
            }
            for (node, mult) in hot.cur_imc.iter_mut().enumerate() {
                let target =
                    self.imc[node].latency_multiplier(hot.node_demand[node] / quantum_s);
                let before = *mult;
                *mult += damp * (target - *mult);
                changed |= *mult != before;
                max_rel = max_rel.max((*mult - before).abs() / before);
            }
            for (idx, mult) in hot.cur_qpi.iter_mut().enumerate() {
                let target = match &self.qpi[idx] {
                    Some(q) => q.latency_multiplier(hot.pair_traffic[idx] / quantum_s),
                    None => 1.0,
                };
                let before = *mult;
                *mult += damp * (target - *mult);
                changed |= *mult != before;
                max_rel = max_rel.max((*mult - before).abs() / before);
            }
            round += 1;
            if round == FIXED_POINT_ROUNDS || !changed {
                // `!changed`: the update was a bitwise identity, so the
                // stored multipliers equal the ones that produced the
                // outputs. A round-cap exit instead stores the post-update
                // multipliers while the outputs came from the pre-update
                // ones — inconsistent, so the next step must not replay.
                consistent_exit = !changed;
                break;
            }
            // Approx mode only: a round that moved every multiplier by
            // less than the tolerance counts as converged. Roll the
            // sub-tolerance nudge back: the round's outputs were computed
            // with the pre-update multipliers, so keeping those makes the
            // stored state consistent with the outputs — and makes a truly
            // static stream reach *bitwise* stationarity (enabling the
            // whole-step skip), instead of creeping forever by less than
            // the tolerance. The multipliers then lag the moving target by
            // at most `fp_tolerance`: once drift accumulates past it, the
            // next round-0 full jump is applied as usual.
            if fp_tol > 0.0 && max_rel < fp_tol {
                self.perf.tolerance_exits += 1;
                // Snap-back volume: multiplier entries whose sub-tolerance
                // nudge the rollback below discards.
                self.perf.snap_backs += hot
                    .cur_imc
                    .iter()
                    .zip(&hot.prev_imc)
                    .chain(hot.cur_qpi.iter().zip(&hot.prev_qpi))
                    .filter(|(a, b)| a.to_bits() != b.to_bits())
                    .count() as u64;
                hot.cur_imc.copy_from_slice(&hot.prev_imc);
                hot.cur_qpi.copy_from_slice(&hot.prev_qpi);
                consistent_exit = true;
                break;
            }
        }
        self.perf.fp_rounds += round as u64;
        self.stationary = hot.cur_imc == self.imc_mult && hot.cur_qpi == self.qpi_mult;
        self.out_consistent = consistent_exit;
        // Every changed slot has been recomputed by the final round (or the
        // derived pass, for inactive slots), so the stored outputs are
        // up to date again.
        for s in hot.slot_changed.iter_mut() {
            *s = false;
        }
        self.imc_mult.copy_from_slice(&hot.cur_imc);
        self.qpi_mult.copy_from_slice(&hot.cur_qpi);
        materialize_results(hot, results, n);
        &self.results
    }
}

/// Copy the final round's output columns into the pooled AoS results the
/// callers consume — once per step, not once per round.
fn materialize_results(hot: &HotState, results: &mut Vec<VcpuQuantumResult>, n: usize) {
    results.truncate(hot.len);
    for i in 0..hot.len {
        let row = &hot.out_node_acc[i * n..(i + 1) * n];
        if i < results.len() {
            let out = &mut results[i];
            out.key = hot.key[i];
            out.instructions = hot.out_instructions[i];
            out.llc_refs = hot.out_refs[i];
            out.llc_misses = hot.out_misses[i];
            out.local_accesses = hot.out_local[i];
            out.remote_accesses = hot.out_remote[i];
            out.node_accesses.clear();
            out.node_accesses.extend_from_slice(row);
            out.effective_cpi = hot.out_cpi[i];
            out.miss_rate = hot.m[i];
        } else {
            results.push(VcpuQuantumResult {
                key: hot.key[i],
                instructions: hot.out_instructions[i],
                llc_refs: hot.out_refs[i],
                llc_misses: hot.out_misses[i],
                local_accesses: hot.out_local[i],
                remote_accesses: hot.out_remote[i],
                node_accesses: row.to_vec(),
                effective_cpi: hot.out_cpi[i],
                miss_rate: hot.m[i],
            });
        }
    }
}


/// Bitwise inequality: the dirty diff must treat any representational
/// change as a change (and, unlike `!=`, must not treat NaN as always
/// changed-and-never-updated, which would re-dirty every step).
#[inline]
fn bits_ne(a: f64, b: f64) -> bool {
    a.to_bits() != b.to_bits()
}

/// `quantize_rel` with the grid mask precomputed (see
/// [`crate::curve::rel_grid_mask`]): identity for the all-ones exact-mode
/// mask and for non-positive/non-finite values, mantissa truncation
/// otherwise. Two integer ops on the per-slot diff path.
#[inline]
fn quantize_bits(x: f64, mask: u64) -> f64 {
    if x > 0.0 && x.is_finite() {
        f64::from_bits(x.to_bits() & mask)
    } else {
        x
    }
}

/// Damped fixed-point iterations per quantum: enough for convergence at
/// the queueing knee, cheap enough to run every quantum. The solve exits
/// early once a round leaves every multiplier bitwise unchanged — each
/// remaining round would reproduce exactly the same state.
pub(crate) const FIXED_POINT_ROUNDS: usize = 4;

/// `x.round() as u64` without the libm call. For `x < 2^53` the cast
/// truncates exactly and `x - trunc(x)` is exact (Sterbenz: `x < 2t` for
/// `t ≥ 1`, trivially for `t = 0`), so adding the half-up carry reproduces
/// round-half-away-from-zero bit for bit; negatives and NaN hit the
/// saturating-cast zero exactly like the reference, and the huge/infinite
/// tail falls back to the reference expression itself.
#[inline]
pub(crate) fn round_to_u64(x: f64) -> u64 {
    if x >= 9_007_199_254_740_992.0 {
        return x.round() as u64;
    }
    let t = x as u64;
    t + u64::from(x - t as f64 >= 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_topo::presets;

    const MB: u64 = 1024 * 1024;

    fn engine() -> MemoryEngine {
        MemoryEngine::new(&presets::xeon_e5620())
    }

    fn quantum() -> SimDuration {
        SimDuration::from_millis(1)
    }

    fn profile(rpti: f64, ws_mb: u64, dist: Vec<f64>) -> AccessProfile {
        AccessProfile {
            rpti,
            base_cpi: 1.0,
            miss_curve: MissCurve::new(0.05, 0.6, ws_mb * MB),
            mlp: 1.0,
            node_access_dist: dist,
        }
    }

    fn usage<'a>(key: u64, node: u16, p: &'a AccessProfile) -> QuantumUsage<'a> {
        QuantumUsage {
            key,
            node: NodeId::new(node),
            runtime_share: 1.0,
            profile: p,
            rpti_scale: 1.0,
            cold_miss_boost: 1.0,
            overhead_us: 0.0,
        }
    }

    #[test]
    fn cpu_only_workload_runs_at_base_cpi() {
        let mut e = engine();
        let p = AccessProfile::cpu_only(1.0, 2);
        let r = e.step(quantum(), &[usage(1, 0, &p)]);
        // 1 ms at 2400 MHz and CPI 1 => 2.4 M instructions.
        assert_eq!(r[0].instructions, 2_400_000);
        assert_eq!(r[0].llc_refs, 0);
        assert_eq!(r[0].llc_misses, 0);
    }

    #[test]
    fn local_beats_remote() {
        let p = profile(20.0, 64, vec![1.0, 0.0]);
        let mut e = engine();
        let local = e.step(quantum(), &[usage(1, 0, &p)])[0].instructions;
        let mut e = engine();
        let remote = e.step(quantum(), &[usage(1, 1, &p)])[0].instructions;
        assert!(
            local as f64 > remote as f64 * 1.05,
            "local={local} remote={remote}"
        );
    }

    #[test]
    fn remote_accesses_follow_distribution() {
        let mut e = engine();
        let p = profile(20.0, 64, vec![0.25, 0.75]);
        let r = &e.step(quantum(), &[usage(1, 0, &p)])[0];
        assert!(r.llc_misses > 0);
        let remote_frac = r.remote_accesses as f64 / r.llc_misses as f64;
        assert!((remote_frac - 0.75).abs() < 0.01, "remote_frac={remote_frac}");
        assert_eq!(
            r.node_accesses.iter().sum::<u64>(),
            r.llc_misses,
            "per-node accesses must sum to misses"
        );
    }

    #[test]
    fn llc_contention_slows_fitting_workload() {
        // A fitting workload alone on node0 vs sharing node0 with thrashers.
        let fit = profile(15.0, 6, vec![1.0, 0.0]);
        let thrash = AccessProfile {
            rpti: 22.0,
            base_cpi: 1.0,
            miss_curve: MissCurve::new(0.5, 0.7, 64 * MB),
            mlp: 1.0,
            node_access_dist: vec![1.0, 0.0],
        };
        let mut e = engine();
        let alone = e.step(quantum(), &[usage(1, 0, &fit)])[0].instructions;
        let mut e = engine();
        let shared = e.step(
            quantum(),
            &[
                usage(1, 0, &fit),
                usage(2, 0, &thrash),
                usage(3, 0, &thrash),
            ],
        )[0]
            .instructions;
        assert!(
            alone as f64 > shared as f64 * 1.2,
            "alone={alone} shared={shared}"
        );
    }

    #[test]
    fn contention_state_lags_one_quantum() {
        let mut e = engine();
        let heavy = profile(30.0, 128, vec![1.0, 0.0]);
        assert_eq!(e.contention().imc_multiplier, vec![1.0, 1.0]);
        e.step(
            quantum(),
            &[
                usage(1, 0, &heavy),
                usage(2, 0, &heavy),
                usage(3, 0, &heavy),
                usage(4, 0, &heavy),
            ],
        );
        let snap = e.contention();
        assert!(snap.imc_multiplier[0] > 1.0, "imc should be loaded: {snap:?}");
        assert_eq!(snap.imc_multiplier[1], 1.0);
    }

    #[test]
    fn qpi_contention_builds_from_remote_traffic() {
        let mut e = engine();
        // Four VCPUs on node1 all hitting node0 memory.
        let p = profile(30.0, 128, vec![1.0, 0.0]);
        let usages: Vec<_> = (0..4).map(|i| usage(i, 1, &p)).collect();
        e.step(quantum(), &usages);
        let snap = e.contention();
        assert!(snap.qpi_multiplier[1] > 1.0, "qpi loaded: {snap:?}");
    }

    #[test]
    fn overhead_reduces_instructions() {
        let mut e = engine();
        let p = AccessProfile::cpu_only(1.0, 2);
        let mut u = usage(1, 0, &p);
        u.overhead_us = 500.0; // half the quantum
        let r = e.step(quantum(), &[u]);
        assert_eq!(r[0].instructions, 1_200_000);
    }

    #[test]
    fn overhead_larger_than_quantum_yields_zero() {
        let mut e = engine();
        let p = AccessProfile::cpu_only(1.0, 2);
        let mut u = usage(1, 0, &p);
        u.overhead_us = 5_000.0;
        let r = e.step(quantum(), &[u]);
        assert_eq!(r[0].instructions, 0);
    }

    #[test]
    fn cold_boost_raises_miss_rate_up_to_max() {
        let fit = profile(15.0, 6, vec![1.0, 0.0]);
        let mut e = engine();
        let warm = e.step(quantum(), &[usage(1, 0, &fit)])[0].miss_rate;
        let mut e = engine();
        let mut u = usage(1, 0, &fit);
        u.cold_miss_boost = 4.0;
        let cold = e.step(quantum(), &[u])[0].miss_rate;
        assert!(cold > warm);
        assert!(cold <= 0.6 + 1e-12, "clamped to max_miss");
    }

    #[test]
    fn runtime_share_scales_output() {
        let mut e = engine();
        let p = AccessProfile::cpu_only(1.0, 2);
        let mut u = usage(1, 0, &p);
        u.runtime_share = 0.5;
        let r = e.step(quantum(), &[u]);
        assert_eq!(r[0].instructions, 1_200_000);
    }

    #[test]
    fn empty_step_is_fine() {
        let mut e = engine();
        assert!(e.step(quantum(), &[]).is_empty());
        assert_eq!(e.contention().imc_multiplier, vec![1.0, 1.0]);
    }

    #[test]
    fn repeated_identical_steps_match_fresh_solve() {
        // The whole-step skip may only fire where a re-solve would land on
        // identical bytes: stepping the same inputs N times must match an
        // engine that actually re-solves every step (reference semantics).
        let p = profile(18.0, 16, vec![0.7, 0.3]);
        let q = profile(25.0, 64, vec![0.2, 0.8]);
        let mut incr = engine();
        let mut ref_e = crate::reference::ReferenceEngine::new(&presets::xeon_e5620());
        for _ in 0..12 {
            let usages = [usage(1, 0, &p), usage(2, 1, &q), usage(3, 1, &p)];
            let a = incr.step(quantum(), &usages);
            let b = ref_e.step(quantum(), &usages);
            assert_eq!(a, b);
            assert_eq!(incr.contention(), ref_e.contention());
            assert_eq!(incr.last_step_stationary(), ref_e.last_step_stationary());
        }
    }

    #[test]
    fn mode_switch_invalidates_and_still_solves() {
        let p = profile(18.0, 16, vec![0.7, 0.3]);
        let mut e = engine();
        e.step(quantum(), &[usage(1, 0, &p)]);
        e.set_mode(EngineMode::Approx(ApproxParams::default()));
        assert_eq!(e.mode(), EngineMode::Approx(ApproxParams::default()));
        let r = e.step(quantum(), &[usage(1, 0, &p)]);
        assert!(r[0].instructions > 0);
        e.set_mode(EngineMode::Exact);
        let r = e.step(quantum(), &[usage(1, 0, &p)]);
        assert!(r[0].instructions > 0);
    }

    #[test]
    fn approx_mode_tracks_exact_within_tolerance() {
        // Documented bound for the default ApproxParams: the 0.05 grid
        // truncates effective RPTI onto a ≤ 3.2 %-spaced ladder, and the
        // 0.05 fixed-point tolerance lets the multipliers lag the moving
        // fixed point by up to 5 % — per-quantum instruction counts stay
        // within a few percent of exact.
        let p = profile(18.0, 16, vec![0.7, 0.3]);
        let q = profile(25.0, 64, vec![0.2, 0.8]);
        let mut exact = engine();
        let mut approx =
            MemoryEngine::with_mode(&presets::xeon_e5620(), EngineMode::Approx(ApproxParams::default()));
        for step in 0..50 {
            // A deterministic pseudo-noise walk over intensity.
            let scale = 1.0 + 0.15 * ((step * 37 % 17) as f64 / 17.0 - 0.5);
            let mut u1 = usage(1, 0, &p);
            u1.rpti_scale = scale;
            let mut u2 = usage(2, 1, &q);
            u2.rpti_scale = 2.0 - scale;
            let usages = [u1, u2];
            let a = exact.step(quantum(), &usages);
            let b = approx.step(quantum(), &usages);
            for (ra, rb) in a.iter().zip(b.iter()) {
                let rel = (ra.instructions as f64 - rb.instructions as f64).abs()
                    / ra.instructions.max(1) as f64;
                assert!(
                    rel < 0.05,
                    "step {step}: approx deviated {rel:.4} (exact={}, approx={})",
                    ra.instructions,
                    rb.instructions
                );
            }
        }
    }
}
