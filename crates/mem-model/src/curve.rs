//! Miss-rate-versus-occupancy curves.
//!
//! Each workload's LLC behaviour is summarized by a piecewise-linear curve:
//! with `occ` bytes of LLC occupancy the workload misses at
//!
//! ```text
//! miss(occ) = max_miss - (max_miss - min_miss) * min(1, occ / ws_bytes)
//! ```
//!
//! The three VCPU categories of the paper (§III-B2) fall out of the curve
//! shape on a 12 MB LLC:
//!
//! * **LLC-friendly** (povray, ep): tiny `ws_bytes` and a low `max_miss` —
//!   the miss rate is low no matter how much cache interference exists.
//! * **LLC-fitting** (lu, mg): `ws_bytes` comparable to the LLC — alone the
//!   working set fits and misses sit at `min_miss`, but contention that
//!   shrinks occupancy drives the miss rate up steeply.
//! * **LLC-thrashing** (milc, libquantum): `ws_bytes` far larger than the
//!   LLC — the miss rate is high even with the whole cache.


/// Piecewise-linear miss-rate curve. Rates are fractions in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MissCurve {
    /// Miss rate with occupancy ≥ `ws_bytes` (the workload's best case).
    pub min_miss: f64,
    /// Miss rate with zero occupancy (fully thrashed).
    pub max_miss: f64,
    /// Working-set size in bytes: occupancy needed to reach `min_miss`.
    pub ws_bytes: u64,
}

impl MissCurve {
    /// Panics if rates are outside `[0,1]`, inverted, or the working set is
    /// zero (use [`MissCurve::flat`] for cache-insensitive workloads).
    pub fn new(min_miss: f64, max_miss: f64, ws_bytes: u64) -> Self {
        assert!((0.0..=1.0).contains(&min_miss), "min_miss out of range");
        assert!((0.0..=1.0).contains(&max_miss), "max_miss out of range");
        assert!(min_miss <= max_miss, "min_miss exceeds max_miss");
        assert!(ws_bytes > 0, "working set must be nonzero");
        MissCurve {
            min_miss,
            max_miss,
            ws_bytes,
        }
    }

    /// A curve that ignores occupancy entirely (e.g. the hungry loop, whose
    /// few references always hit).
    pub fn flat(miss: f64) -> Self {
        MissCurve::new(miss, miss, 1)
    }

    /// Miss rate at the given occupancy in bytes.
    pub fn miss_rate(&self, occupancy_bytes: f64) -> f64 {
        let cover = (occupancy_bytes / self.ws_bytes as f64).clamp(0.0, 1.0);
        self.max_miss - (self.max_miss - self.min_miss) * cover
    }

    /// Miss rate when running alone on a cache of `capacity` bytes — what
    /// the paper's Fig. 3(a) pinned single-VCPU experiment measures.
    pub fn solo_miss_rate(&self, capacity: u64) -> f64 {
        self.miss_rate(capacity as f64)
    }
}

/// Mantissa mask for a relative quantization grid: keeps the fewest
/// leading mantissa bits whose spacing `2^-k` still stays within `grid`,
/// so `f64::from_bits(x.to_bits() & mask)` truncates `x` onto a geometric
/// ladder with relative error below `grid`. A non-positive grid yields the
/// all-ones mask — the exact-mode identity, bit for bit.
///
/// Computing the mask once per grid keeps the per-value quantization to
/// two integer ops (no `ln`/`exp`), which matters because the engine
/// quantizes every slot's intensity every quantum.
pub fn rel_grid_mask(grid: f64) -> u64 {
    if grid <= 0.0 {
        return !0u64;
    }
    // Smallest k with 2^-k <= grid; mantissa has 52 bits.
    let k = (-grid.log2()).ceil().max(0.0) as u32;
    let keep = k.min(52);
    !((1u64 << (52 - keep)) - 1)
}

/// Snap a positive value onto a relative grid of width `grid` by mantissa
/// truncation (see [`rel_grid_mask`]): the result is the largest grid
/// point not exceeding `x`, with relative error below `grid` (3.2 % worst
/// case for `grid = 0.05`, which selects 2^-5 spacing). Zero, negatives,
/// NaN, and a non-positive grid pass through unchanged — in particular
/// `grid = 0` (exact mode) is the identity, bit for bit.
///
/// The engine's approx mode uses this to turn continuously-noisy
/// intensity inputs into a small set of repeating keys, which is what lets
/// its dirty bits and the per-node solve memo fire under burstiness noise.
pub fn quantize_rel(x: f64, grid: f64) -> f64 {
    if grid <= 0.0 || !x.is_finite() || x <= 0.0 {
        return x;
    }
    f64::from_bits(x.to_bits() & rel_grid_mask(grid))
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1024 * 1024;

    #[test]
    fn fitting_workload_hits_when_alone() {
        let c = MissCurve::new(0.05, 0.5, 6 * MB);
        assert!((c.solo_miss_rate(12 * MB) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn fitting_workload_degrades_under_contention() {
        let c = MissCurve::new(0.05, 0.5, 6 * MB);
        let half = c.miss_rate(3.0 * MB as f64);
        assert!((half - 0.275).abs() < 1e-12);
        assert!((c.miss_rate(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn thrashing_workload_high_even_with_full_cache() {
        let c = MissCurve::new(0.4, 0.7, 64 * MB);
        let solo = c.solo_miss_rate(12 * MB);
        // 12/64 of the way down from 0.7 toward 0.4.
        assert!((solo - (0.7 - 0.3 * 12.0 / 64.0)).abs() < 1e-12);
        assert!(solo > 0.6);
    }

    #[test]
    fn friendly_workload_low_everywhere() {
        let c = MissCurve::new(0.01, 0.03, MB / 2);
        assert!(c.miss_rate(0.0) <= 0.03);
        assert!(c.solo_miss_rate(12 * MB) <= 0.011);
    }

    #[test]
    fn monotone_in_occupancy() {
        let c = MissCurve::new(0.1, 0.6, 8 * MB);
        let mut prev = f64::INFINITY;
        for occ in (0..=16).map(|i| i as f64 * MB as f64) {
            let m = c.miss_rate(occ);
            assert!(m <= prev + 1e-12);
            prev = m;
        }
    }

    #[test]
    fn flat_curve_is_constant() {
        let c = MissCurve::flat(0.02);
        assert_eq!(c.miss_rate(0.0), c.miss_rate(1e9));
    }

    #[test]
    #[should_panic(expected = "min_miss exceeds max_miss")]
    fn rejects_inverted() {
        MissCurve::new(0.5, 0.1, MB);
    }

    #[test]
    #[should_panic(expected = "working set")]
    fn rejects_zero_ws() {
        MissCurve::new(0.1, 0.5, 0);
    }

    #[test]
    fn quantize_zero_grid_is_bitwise_identity() {
        for x in [0.0, -3.5, 1.0, 17.3, f64::NAN, f64::INFINITY] {
            assert_eq!(quantize_rel(x, 0.0).to_bits(), x.to_bits());
        }
    }

    #[test]
    fn quantize_passes_nonpositive_through() {
        assert_eq!(quantize_rel(0.0, 0.05), 0.0);
        assert_eq!(quantize_rel(-2.0, 0.05), -2.0);
    }

    #[test]
    fn quantize_error_bounded_by_grid() {
        let grid = 0.05;
        for i in 1..1000 {
            let x = i as f64 * 0.037;
            let q = quantize_rel(x, grid);
            // Truncation: never above, relative error strictly below the grid.
            assert!(q <= x, "x={x} q={q}");
            let rel = (x - q) / x;
            assert!(rel < grid, "x={x} q={q} rel={rel}");
        }
    }

    #[test]
    fn grid_mask_identity_for_nonpositive_grid() {
        assert_eq!(rel_grid_mask(0.0), !0u64);
        assert_eq!(rel_grid_mask(-1.0), !0u64);
        // grid 0.05 keeps 5 mantissa bits (2^-5 = 0.03125 <= 0.05).
        assert_eq!(rel_grid_mask(0.05), !((1u64 << 47) - 1));
    }

    #[test]
    fn quantize_is_idempotent_and_collapses_neighbours() {
        let grid = 0.05;
        let q = quantize_rel(20.0, grid);
        assert_eq!(quantize_rel(q, grid).to_bits(), q.to_bits());
        // Values within a fraction of the grid of each other land on the
        // same point — this is what makes noisy inputs repeat.
        assert_eq!(
            quantize_rel(20.0, grid).to_bits(),
            quantize_rel(20.2, grid).to_bits()
        );
    }
}
