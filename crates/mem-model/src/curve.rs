//! Miss-rate-versus-occupancy curves.
//!
//! Each workload's LLC behaviour is summarized by a piecewise-linear curve:
//! with `occ` bytes of LLC occupancy the workload misses at
//!
//! ```text
//! miss(occ) = max_miss - (max_miss - min_miss) * min(1, occ / ws_bytes)
//! ```
//!
//! The three VCPU categories of the paper (§III-B2) fall out of the curve
//! shape on a 12 MB LLC:
//!
//! * **LLC-friendly** (povray, ep): tiny `ws_bytes` and a low `max_miss` —
//!   the miss rate is low no matter how much cache interference exists.
//! * **LLC-fitting** (lu, mg): `ws_bytes` comparable to the LLC — alone the
//!   working set fits and misses sit at `min_miss`, but contention that
//!   shrinks occupancy drives the miss rate up steeply.
//! * **LLC-thrashing** (milc, libquantum): `ws_bytes` far larger than the
//!   LLC — the miss rate is high even with the whole cache.


/// Piecewise-linear miss-rate curve. Rates are fractions in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MissCurve {
    /// Miss rate with occupancy ≥ `ws_bytes` (the workload's best case).
    pub min_miss: f64,
    /// Miss rate with zero occupancy (fully thrashed).
    pub max_miss: f64,
    /// Working-set size in bytes: occupancy needed to reach `min_miss`.
    pub ws_bytes: u64,
}

impl MissCurve {
    /// Panics if rates are outside `[0,1]`, inverted, or the working set is
    /// zero (use [`MissCurve::flat`] for cache-insensitive workloads).
    pub fn new(min_miss: f64, max_miss: f64, ws_bytes: u64) -> Self {
        assert!((0.0..=1.0).contains(&min_miss), "min_miss out of range");
        assert!((0.0..=1.0).contains(&max_miss), "max_miss out of range");
        assert!(min_miss <= max_miss, "min_miss exceeds max_miss");
        assert!(ws_bytes > 0, "working set must be nonzero");
        MissCurve {
            min_miss,
            max_miss,
            ws_bytes,
        }
    }

    /// A curve that ignores occupancy entirely (e.g. the hungry loop, whose
    /// few references always hit).
    pub fn flat(miss: f64) -> Self {
        MissCurve::new(miss, miss, 1)
    }

    /// Miss rate at the given occupancy in bytes.
    pub fn miss_rate(&self, occupancy_bytes: f64) -> f64 {
        let cover = (occupancy_bytes / self.ws_bytes as f64).clamp(0.0, 1.0);
        self.max_miss - (self.max_miss - self.min_miss) * cover
    }

    /// Miss rate when running alone on a cache of `capacity` bytes — what
    /// the paper's Fig. 3(a) pinned single-VCPU experiment measures.
    pub fn solo_miss_rate(&self, capacity: u64) -> f64 {
        self.miss_rate(capacity as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1024 * 1024;

    #[test]
    fn fitting_workload_hits_when_alone() {
        let c = MissCurve::new(0.05, 0.5, 6 * MB);
        assert!((c.solo_miss_rate(12 * MB) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn fitting_workload_degrades_under_contention() {
        let c = MissCurve::new(0.05, 0.5, 6 * MB);
        let half = c.miss_rate(3.0 * MB as f64);
        assert!((half - 0.275).abs() < 1e-12);
        assert!((c.miss_rate(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn thrashing_workload_high_even_with_full_cache() {
        let c = MissCurve::new(0.4, 0.7, 64 * MB);
        let solo = c.solo_miss_rate(12 * MB);
        // 12/64 of the way down from 0.7 toward 0.4.
        assert!((solo - (0.7 - 0.3 * 12.0 / 64.0)).abs() < 1e-12);
        assert!(solo > 0.6);
    }

    #[test]
    fn friendly_workload_low_everywhere() {
        let c = MissCurve::new(0.01, 0.03, MB / 2);
        assert!(c.miss_rate(0.0) <= 0.03);
        assert!(c.solo_miss_rate(12 * MB) <= 0.011);
    }

    #[test]
    fn monotone_in_occupancy() {
        let c = MissCurve::new(0.1, 0.6, 8 * MB);
        let mut prev = f64::INFINITY;
        for occ in (0..=16).map(|i| i as f64 * MB as f64) {
            let m = c.miss_rate(occ);
            assert!(m <= prev + 1e-12);
            prev = m;
        }
    }

    #[test]
    fn flat_curve_is_constant() {
        let c = MissCurve::flat(0.02);
        assert_eq!(c.miss_rate(0.0), c.miss_rate(1e9));
    }

    #[test]
    #[should_panic(expected = "min_miss exceeds max_miss")]
    fn rejects_inverted() {
        MissCurve::new(0.5, 0.1, MB);
    }

    #[test]
    #[should_panic(expected = "working set")]
    fn rejects_zero_ws() {
        MissCurve::new(0.1, 0.5, 0);
    }
}
