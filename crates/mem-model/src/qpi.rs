//! Interconnect (QPI) link contention.
//!
//! Remote LLC misses cross the socket interconnect. Traffic between a node
//! pair is spread across the parallel links joining them (Table I's machine
//! has two), and each link inflates its hop latency with utilization the
//! same way the IMC model does. Heavy remote-access traffic therefore
//! penalizes *all* cross-node accesses — the "interconnect link contention"
//! factor the paper lists, and the reason Fig. 1's 80 %-remote workloads
//! hurt twice.


/// Queueing model of one direction of one interconnect link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QpiModel {
    /// Usable bandwidth per direction, bytes/second.
    pub bandwidth_bytes_per_s: u64,
    /// Parallel links between the node pair sharing this traffic.
    pub parallel_links: u32,
    /// Utilization cap for the latency multiplier.
    pub utilization_cap: f64,
}

impl QpiModel {
    pub fn new(bandwidth_bytes_per_s: u64, parallel_links: u32) -> Self {
        assert!(bandwidth_bytes_per_s > 0, "link bandwidth must be nonzero");
        assert!(parallel_links > 0, "need at least one link");
        QpiModel {
            bandwidth_bytes_per_s,
            parallel_links,
            utilization_cap: 0.95,
        }
    }

    /// Aggregate bandwidth across the parallel links.
    #[inline]
    pub fn total_bandwidth(&self) -> f64 {
        self.bandwidth_bytes_per_s as f64 * self.parallel_links as f64
    }

    #[inline]
    pub fn utilization(&self, traffic_bytes_per_s: f64) -> f64 {
        (traffic_bytes_per_s / self.total_bandwidth()).max(0.0)
    }

    /// Hop-latency multiplier under the given cross-node traffic.
    /// Inlined: evaluated once per node pair per fixed-point round.
    #[inline]
    pub fn latency_multiplier(&self, traffic_bytes_per_s: f64) -> f64 {
        let u = self.utilization(traffic_bytes_per_s).min(self.utilization_cap);
        1.0 / (1.0 - u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_links_share_traffic() {
        let one = QpiModel::new(11_720_000_000, 1);
        let two = QpiModel::new(11_720_000_000, 2);
        let t = 11_720_000_000.0;
        assert!(two.latency_multiplier(t) < one.latency_multiplier(t));
        assert!((two.utilization(t) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn idle_link_unit_multiplier() {
        let q = QpiModel::new(1_000, 2);
        assert_eq!(q.latency_multiplier(0.0), 1.0);
    }

    #[test]
    fn saturates_at_cap() {
        let q = QpiModel::new(1_000, 1);
        assert_eq!(q.latency_multiplier(1e12), 1.0 / (1.0 - 0.95));
    }

    #[test]
    #[should_panic(expected = "at least one link")]
    fn rejects_zero_links() {
        QpiModel::new(1_000, 0);
    }
}
