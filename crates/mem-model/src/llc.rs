//! Shared last-level cache contention model.
//!
//! Each NUMA node's cores share one LLC. Co-running VCPUs occupy cache in
//! proportion to their *demand* — access intensity times working-set size —
//! a standard proportional-occupancy approximation of set-associative
//! sharing. The resulting occupancy feeds each workload's
//! [`MissCurve`](crate::curve::MissCurve) to produce its miss rate.
//!
//! This is the mechanism behind the paper's central observation: piling
//! several LLC-thrashing VCPUs onto one socket starves the LLC-fitting
//! VCPUs there (their occupancy collapses, so their miss rate soars), while
//! spreading the thrashers evenly — what vProbe's periodical partitioning
//! does — keeps every socket's contention moderate.

use crate::curve::MissCurve;

/// One VCPU's demand on a shared LLC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LlcDemand {
    /// LLC references per thousand instructions (the paper's RPTI).
    pub rpti: f64,
    /// The workload's miss curve (working set size lives here).
    pub curve: MissCurve,
    /// Fraction of the quantum this VCPU ran on the socket (0..=1).
    pub runtime_share: f64,
}

/// Resulting occupancy and miss rate for one VCPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LlcOccupancy {
    pub occupancy_bytes: f64,
    pub miss_rate: f64,
}

/// Shared-cache model for one node/socket.
#[derive(Debug, Clone)]
pub struct LlcModel {
    capacity_bytes: u64,
}

/// Reusable working buffers for [`LlcModel::occupancies_into`], so the
/// per-quantum solve allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct LlcScratch {
    occ: Vec<f64>,
    active: Vec<usize>,
    saturated: Vec<bool>,
    /// Demand weights, hoisted out of the redistribution rounds: the
    /// weight is a pure per-demand product, so computing it once and
    /// summing the cached values round by round yields the same bits as
    /// recomputing it inside every round (identical factors, identical
    /// sum order over the same `active` sequence).
    weight: Vec<f64>,
    any_saturated: bool,
}

/// A small memo of recent per-node occupancy solves, used by the engine's
/// approx mode: once intensity inputs are quantized onto a grid, the
/// `(occupancy-demand, intensity) → miss-rate` mapping revisits the same
/// keys (noise oscillating between grid points, periodic placements), so
/// a handful of entries catches re-solves the consecutive-step dirty bits
/// cannot. Keys are 64-bit fingerprints ([`fingerprint_u64`]) of the
/// bitwise member-demand tuples: lookup is eight integer compares instead
/// of a vector scan, which keeps the miss path (the common case on a
/// genuinely noisy stream) nearly free. A fingerprint collision would
/// return a stale solve — with 8 live entries the odds are ~2⁻⁶⁰ per
/// lookup, far below the approx mode's deliberate model error, and exact
/// mode never consults the cache.
#[derive(Debug, Clone)]
pub struct LlcSolveCache {
    entries: Vec<(u64, Vec<f64>)>,
    next: usize,
    /// Consecutive lookup misses; drives the self-disable heuristic.
    miss_streak: u32,
    /// Calls skipped since the memo disabled itself (for re-probing).
    skip_tick: u32,
    /// Perf introspection: times the miss streak crossed
    /// [`LLC_CACHE_OFF`] (including a failed re-probe falling straight
    /// back). Never read by the solve itself; survives [`clear`] so a
    /// whole run's history stays visible (`clear` resets the *cache*,
    /// not the run's accounting).
    ///
    /// [`clear`]: LlcSolveCache::clear
    disable_events: u64,
}

/// Entries per node: enough for a few co-runner intensity grid points
/// without making the linear scan cost more than the solve it avoids.
const LLC_CACHE_ENTRIES: usize = 8;

/// Consecutive misses after which the stream is deemed non-repeating and
/// the memo stops being consulted — on a genuinely noisy stream the
/// fingerprint build and insert are pure overhead. One call in every
/// [`LLC_CACHE_PROBE`] still goes through, so a stream that settles into
/// repetition re-enables the memo within a bounded number of solves.
const LLC_CACHE_OFF: u32 = 128;
const LLC_CACHE_PROBE: u32 = 64;

/// Fold one word into a running 64-bit key fingerprint (rotate-xor then a
/// multiply by a random odd constant — enough diffusion that nearby float
/// bit patterns land far apart).
#[inline]
pub fn fingerprint_u64(h: u64, word: u64) -> u64 {
    (h.rotate_left(23) ^ word).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

impl Default for LlcSolveCache {
    fn default() -> Self {
        LlcSolveCache {
            entries: Vec::with_capacity(LLC_CACHE_ENTRIES),
            next: 0,
            miss_streak: 0,
            skip_tick: 0,
            disable_events: 0,
        }
    }
}

impl LlcSolveCache {
    /// Whether this call should consult the memo at all. Answers `false`
    /// (and costs two integer ops) while the recent miss streak says the
    /// stream is not repeating, except for the periodic re-probe.
    pub fn consult(&mut self) -> bool {
        if self.miss_streak < LLC_CACHE_OFF {
            return true;
        }
        self.skip_tick += 1;
        if self.skip_tick >= LLC_CACHE_PROBE {
            self.skip_tick = 0;
            self.miss_streak = LLC_CACHE_OFF - 1;
            return true;
        }
        false
    }

    /// The cached per-member miss rates for this fingerprint, if present.
    /// Tracks the hit/miss streak for [`LlcSolveCache::consult`].
    pub fn lookup(&mut self, fp: u64) -> Option<&[f64]> {
        match self.entries.iter().position(|(k, _)| *k == fp) {
            Some(idx) => {
                self.miss_streak = 0;
                Some(self.entries[idx].1.as_slice())
            }
            None => {
                self.miss_streak = self.miss_streak.saturating_add(1);
                if self.miss_streak == LLC_CACHE_OFF {
                    self.disable_events += 1;
                }
                None
            }
        }
    }

    /// How many times the memo self-disabled (see `disable_events`).
    pub fn disable_events(&self) -> u64 {
        self.disable_events
    }

    /// Insert a solve result, evicting round-robin once full. Copies into
    /// the evicted entry's buffer, so a warm cache never allocates on the
    /// per-quantum path.
    pub fn insert(&mut self, fp: u64, miss: &[f64]) {
        if self.entries.len() < LLC_CACHE_ENTRIES {
            self.entries.push((fp, miss.to_vec()));
            return;
        }
        let slot = &mut self.entries[self.next];
        slot.0 = fp;
        slot.1.clear();
        slot.1.extend_from_slice(miss);
        self.next = (self.next + 1) % LLC_CACHE_ENTRIES;
    }

    /// Drop all entries (mode switches, cache invalidation).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.next = 0;
        self.miss_streak = 0;
        self.skip_tick = 0;
    }
}

impl LlcModel {
    pub fn new(capacity_bytes: u64) -> Self {
        assert!(capacity_bytes > 0, "LLC capacity must be nonzero");
        LlcModel { capacity_bytes }
    }

    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Split the cache among co-running VCPUs and evaluate each miss curve.
    ///
    /// Demand weight is `rpti × min(ws, capacity) × runtime_share`: a
    /// workload cannot usefully occupy more than its working set, nor more
    /// than the whole cache; occupancy beyond its working set is handed
    /// back to the others (iteratively), which is what lets a small
    /// LLC-friendly VCPU coexist with a thrasher without the model starving
    /// either artificially.
    pub fn occupancies(&self, demands: &[LlcDemand]) -> Vec<LlcOccupancy> {
        let mut out = Vec::new();
        let mut scratch = LlcScratch::default();
        self.occupancies_into(demands, &mut out, &mut scratch);
        out
    }

    /// Allocation-free form of [`LlcModel::occupancies`]: identical math
    /// and iteration order (the per-quantum engine solve depends on the
    /// results being bit-for-bit the same), writing into `out` and reusing
    /// `scratch` across calls.
    pub fn occupancies_into(
        &self,
        demands: &[LlcDemand],
        out: &mut Vec<LlcOccupancy>,
        scratch: &mut LlcScratch,
    ) {
        let n = demands.len();
        let cap = self.capacity_bytes as f64;
        out.clear();
        if n == 0 {
            return;
        }
        scratch.occ.clear();
        scratch.occ.resize(n, 0.0);
        let occ = &mut scratch.occ;
        // Iteratively distribute capacity proportionally to demand weight,
        // capping each VCPU at its working set and redistributing surplus.
        let mut remaining_cap = cap;
        scratch.active.clear();
        scratch
            .active
            .extend((0..n).filter(|&i| demands[i].rpti > 0.0 && demands[i].runtime_share > 0.0));
        let active = &mut scratch.active;
        scratch.saturated.clear();
        scratch.saturated.resize(n, false);
        let saturated = &mut scratch.saturated;
        scratch.weight.clear();
        scratch.weight.extend(demands.iter().map(|d| {
            d.rpti * d.runtime_share * (d.curve.ws_bytes as f64).min(cap)
        }));
        let weight = &scratch.weight;
        for _round in 0..n.max(1) {
            if active.is_empty() || remaining_cap <= 0.0 {
                break;
            }
            let total_weight: f64 = active.iter().map(|&i| weight[i]).sum();
            if total_weight <= 0.0 {
                break;
            }
            scratch.any_saturated = false;
            let mut used = 0.0;
            for &i in active.iter() {
                let d = &demands[i];
                let w = weight[i];
                let grant = remaining_cap * w / total_weight;
                let room = d.curve.ws_bytes as f64 - occ[i];
                let take = grant.min(room);
                occ[i] += take;
                used += take;
                if occ[i] >= d.curve.ws_bytes as f64 - 1.0 {
                    saturated[i] = true;
                    scratch.any_saturated = true;
                }
            }
            remaining_cap -= used;
            if !scratch.any_saturated {
                break;
            }
            active.retain(|&i| !saturated[i]);
        }
        out.extend(demands.iter().zip(occ.iter()).map(|(d, &o)| LlcOccupancy {
            occupancy_bytes: o,
            miss_rate: d.curve.miss_rate(o),
        }));
    }

    /// Sum of occupancies never exceeds capacity (checked by tests and
    /// property tests).
    pub fn total_occupancy(occ: &[LlcOccupancy]) -> f64 {
        occ.iter().map(|o| o.occupancy_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1024 * 1024;

    fn demand(rpti: f64, min_m: f64, max_m: f64, ws_mb: u64) -> LlcDemand {
        LlcDemand {
            rpti,
            curve: MissCurve::new(min_m, max_m, ws_mb * MB),
            runtime_share: 1.0,
        }
    }

    #[test]
    fn solo_fitting_workload_gets_its_working_set() {
        let llc = LlcModel::new(12 * MB);
        let occ = llc.occupancies(&[demand(15.0, 0.05, 0.5, 6)]);
        assert!((occ[0].occupancy_bytes - 6.0 * MB as f64).abs() < MB as f64 * 0.01);
        assert!((occ[0].miss_rate - 0.05).abs() < 1e-6);
    }

    #[test]
    fn solo_thrasher_takes_whole_cache() {
        let llc = LlcModel::new(12 * MB);
        let occ = llc.occupancies(&[demand(22.0, 0.4, 0.7, 64)]);
        assert!((occ[0].occupancy_bytes - 12.0 * MB as f64).abs() < 1.0);
        assert!(occ[0].miss_rate > 0.6);
    }

    #[test]
    fn thrasher_starves_fitting_workload() {
        let llc = LlcModel::new(12 * MB);
        let solo = llc.occupancies(&[demand(15.0, 0.05, 0.5, 6)])[0].miss_rate;
        let contended = llc.occupancies(&[
            demand(15.0, 0.05, 0.5, 6),
            demand(22.0, 0.4, 0.7, 64),
            demand(22.0, 0.4, 0.7, 64),
        ])[0]
            .miss_rate;
        assert!(
            contended > solo * 2.0,
            "contention should raise the fitting miss rate: solo={solo}, contended={contended}"
        );
    }

    #[test]
    fn friendly_workload_unaffected_by_thrashers() {
        let llc = LlcModel::new(12 * MB);
        let friendly = demand(0.5, 0.01, 0.03, 1);
        let alone = llc.occupancies(&[friendly])[0].miss_rate;
        let crowded = llc.occupancies(&[
            friendly,
            demand(22.0, 0.4, 0.7, 64),
            demand(22.0, 0.4, 0.7, 64),
            demand(22.0, 0.4, 0.7, 64),
        ])[0]
            .miss_rate;
        assert!(crowded <= 0.03 + 1e-9);
        assert!(crowded - alone < 0.02);
    }

    #[test]
    fn occupancy_conserved() {
        let llc = LlcModel::new(12 * MB);
        let occ = llc.occupancies(&[
            demand(15.0, 0.05, 0.5, 6),
            demand(16.0, 0.05, 0.5, 8),
            demand(22.0, 0.4, 0.7, 64),
            demand(0.5, 0.01, 0.03, 1),
        ]);
        let total = LlcModel::total_occupancy(&occ);
        assert!(total <= 12.0 * MB as f64 + 1.0, "total={total}");
    }

    #[test]
    fn zero_rpti_vcpu_occupies_nothing() {
        let llc = LlcModel::new(12 * MB);
        let occ = llc.occupancies(&[demand(0.0, 0.01, 0.5, 6), demand(22.0, 0.4, 0.7, 64)]);
        assert_eq!(occ[0].occupancy_bytes, 0.0);
    }

    #[test]
    fn runtime_share_scales_demand() {
        let llc = LlcModel::new(12 * MB);
        let mut half = demand(20.0, 0.1, 0.6, 16);
        half.runtime_share = 0.5;
        let full = demand(20.0, 0.1, 0.6, 16);
        let occ = llc.occupancies(&[half, full]);
        assert!(occ[0].occupancy_bytes < occ[1].occupancy_bytes);
    }

    #[test]
    fn empty_input_is_empty() {
        let llc = LlcModel::new(12 * MB);
        assert!(llc.occupancies(&[]).is_empty());
    }

    #[test]
    fn more_thrashers_spread_pain() {
        // Two sockets' worth of thrashers on one socket should miss more in
        // aggregate than one thrasher alone: this is the imbalance vProbe's
        // partitioning removes.
        let llc = LlcModel::new(12 * MB);
        let one = llc.occupancies(&[demand(22.0, 0.4, 0.7, 64)]);
        let four = llc.occupancies(&[
            demand(22.0, 0.4, 0.7, 64),
            demand(22.0, 0.4, 0.7, 64),
            demand(22.0, 0.4, 0.7, 64),
            demand(22.0, 0.4, 0.7, 64),
        ]);
        assert!(four[0].miss_rate > one[0].miss_rate);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    const MB: u64 = 1024 * 1024;

    fn arb_demand() -> impl Strategy<Value = LlcDemand> {
        (0.0f64..40.0, 0.0f64..0.5, 1u64..128, 0.0f64..=1.0).prop_map(
            |(rpti, min_m, ws_mb, share)| LlcDemand {
                rpti,
                curve: MissCurve::new(min_m, (min_m + 0.3).min(1.0), ws_mb * MB),
                runtime_share: share,
            },
        )
    }

    proptest! {
        #[test]
        fn occupancy_never_exceeds_capacity(demands in prop::collection::vec(arb_demand(), 0..12)) {
            let llc = LlcModel::new(12 * MB);
            let occ = llc.occupancies(&demands);
            let total = LlcModel::total_occupancy(&occ);
            prop_assert!(total <= 12.0 * MB as f64 * (1.0 + 1e-9));
        }

        #[test]
        fn miss_rates_within_curve_bounds(demands in prop::collection::vec(arb_demand(), 1..12)) {
            let llc = LlcModel::new(12 * MB);
            let occ = llc.occupancies(&demands);
            for (d, o) in demands.iter().zip(occ.iter()) {
                prop_assert!(o.miss_rate >= d.curve.min_miss - 1e-9);
                prop_assert!(o.miss_rate <= d.curve.max_miss + 1e-9);
            }
        }

        #[test]
        fn occupancy_never_exceeds_working_set(demands in prop::collection::vec(arb_demand(), 1..12)) {
            let llc = LlcModel::new(12 * MB);
            let occ = llc.occupancies(&demands);
            for (d, o) in demands.iter().zip(occ.iter()) {
                prop_assert!(o.occupancy_bytes <= d.curve.ws_bytes as f64 + 1.0);
            }
        }
    }
}
