//! Shared last-level cache contention model.
//!
//! Each NUMA node's cores share one LLC. Co-running VCPUs occupy cache in
//! proportion to their *demand* — access intensity times working-set size —
//! a standard proportional-occupancy approximation of set-associative
//! sharing. The resulting occupancy feeds each workload's
//! [`MissCurve`](crate::curve::MissCurve) to produce its miss rate.
//!
//! This is the mechanism behind the paper's central observation: piling
//! several LLC-thrashing VCPUs onto one socket starves the LLC-fitting
//! VCPUs there (their occupancy collapses, so their miss rate soars), while
//! spreading the thrashers evenly — what vProbe's periodical partitioning
//! does — keeps every socket's contention moderate.

use crate::curve::MissCurve;

/// One VCPU's demand on a shared LLC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LlcDemand {
    /// LLC references per thousand instructions (the paper's RPTI).
    pub rpti: f64,
    /// The workload's miss curve (working set size lives here).
    pub curve: MissCurve,
    /// Fraction of the quantum this VCPU ran on the socket (0..=1).
    pub runtime_share: f64,
}

/// Resulting occupancy and miss rate for one VCPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LlcOccupancy {
    pub occupancy_bytes: f64,
    pub miss_rate: f64,
}

/// Shared-cache model for one node/socket.
#[derive(Debug, Clone)]
pub struct LlcModel {
    capacity_bytes: u64,
}

/// Reusable working buffers for [`LlcModel::occupancies_into`], so the
/// per-quantum solve allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct LlcScratch {
    occ: Vec<f64>,
    active: Vec<usize>,
    saturated: Vec<bool>,
    any_saturated: bool,
}

impl LlcModel {
    pub fn new(capacity_bytes: u64) -> Self {
        assert!(capacity_bytes > 0, "LLC capacity must be nonzero");
        LlcModel { capacity_bytes }
    }

    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Split the cache among co-running VCPUs and evaluate each miss curve.
    ///
    /// Demand weight is `rpti × min(ws, capacity) × runtime_share`: a
    /// workload cannot usefully occupy more than its working set, nor more
    /// than the whole cache; occupancy beyond its working set is handed
    /// back to the others (iteratively), which is what lets a small
    /// LLC-friendly VCPU coexist with a thrasher without the model starving
    /// either artificially.
    pub fn occupancies(&self, demands: &[LlcDemand]) -> Vec<LlcOccupancy> {
        let mut out = Vec::new();
        let mut scratch = LlcScratch::default();
        self.occupancies_into(demands, &mut out, &mut scratch);
        out
    }

    /// Allocation-free form of [`LlcModel::occupancies`]: identical math
    /// and iteration order (the per-quantum engine solve depends on the
    /// results being bit-for-bit the same), writing into `out` and reusing
    /// `scratch` across calls.
    pub fn occupancies_into(
        &self,
        demands: &[LlcDemand],
        out: &mut Vec<LlcOccupancy>,
        scratch: &mut LlcScratch,
    ) {
        let n = demands.len();
        let cap = self.capacity_bytes as f64;
        out.clear();
        if n == 0 {
            return;
        }
        scratch.occ.clear();
        scratch.occ.resize(n, 0.0);
        let occ = &mut scratch.occ;
        // Iteratively distribute capacity proportionally to demand weight,
        // capping each VCPU at its working set and redistributing surplus.
        let mut remaining_cap = cap;
        scratch.active.clear();
        scratch
            .active
            .extend((0..n).filter(|&i| demands[i].rpti > 0.0 && demands[i].runtime_share > 0.0));
        let active = &mut scratch.active;
        scratch.saturated.clear();
        scratch.saturated.resize(n, false);
        let saturated = &mut scratch.saturated;
        for _round in 0..n.max(1) {
            if active.is_empty() || remaining_cap <= 0.0 {
                break;
            }
            let total_weight: f64 = active
                .iter()
                .map(|&i| {
                    let d = &demands[i];
                    d.rpti * d.runtime_share * (d.curve.ws_bytes as f64).min(cap)
                })
                .sum();
            if total_weight <= 0.0 {
                break;
            }
            scratch.any_saturated = false;
            let mut used = 0.0;
            for &i in active.iter() {
                let d = &demands[i];
                let w = d.rpti * d.runtime_share * (d.curve.ws_bytes as f64).min(cap);
                let grant = remaining_cap * w / total_weight;
                let room = d.curve.ws_bytes as f64 - occ[i];
                let take = grant.min(room);
                occ[i] += take;
                used += take;
                if occ[i] >= d.curve.ws_bytes as f64 - 1.0 {
                    saturated[i] = true;
                    scratch.any_saturated = true;
                }
            }
            remaining_cap -= used;
            if !scratch.any_saturated {
                break;
            }
            active.retain(|&i| !saturated[i]);
        }
        out.extend(demands.iter().zip(occ.iter()).map(|(d, &o)| LlcOccupancy {
            occupancy_bytes: o,
            miss_rate: d.curve.miss_rate(o),
        }));
    }

    /// Sum of occupancies never exceeds capacity (checked by tests and
    /// property tests).
    pub fn total_occupancy(occ: &[LlcOccupancy]) -> f64 {
        occ.iter().map(|o| o.occupancy_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1024 * 1024;

    fn demand(rpti: f64, min_m: f64, max_m: f64, ws_mb: u64) -> LlcDemand {
        LlcDemand {
            rpti,
            curve: MissCurve::new(min_m, max_m, ws_mb * MB),
            runtime_share: 1.0,
        }
    }

    #[test]
    fn solo_fitting_workload_gets_its_working_set() {
        let llc = LlcModel::new(12 * MB);
        let occ = llc.occupancies(&[demand(15.0, 0.05, 0.5, 6)]);
        assert!((occ[0].occupancy_bytes - 6.0 * MB as f64).abs() < MB as f64 * 0.01);
        assert!((occ[0].miss_rate - 0.05).abs() < 1e-6);
    }

    #[test]
    fn solo_thrasher_takes_whole_cache() {
        let llc = LlcModel::new(12 * MB);
        let occ = llc.occupancies(&[demand(22.0, 0.4, 0.7, 64)]);
        assert!((occ[0].occupancy_bytes - 12.0 * MB as f64).abs() < 1.0);
        assert!(occ[0].miss_rate > 0.6);
    }

    #[test]
    fn thrasher_starves_fitting_workload() {
        let llc = LlcModel::new(12 * MB);
        let solo = llc.occupancies(&[demand(15.0, 0.05, 0.5, 6)])[0].miss_rate;
        let contended = llc.occupancies(&[
            demand(15.0, 0.05, 0.5, 6),
            demand(22.0, 0.4, 0.7, 64),
            demand(22.0, 0.4, 0.7, 64),
        ])[0]
            .miss_rate;
        assert!(
            contended > solo * 2.0,
            "contention should raise the fitting miss rate: solo={solo}, contended={contended}"
        );
    }

    #[test]
    fn friendly_workload_unaffected_by_thrashers() {
        let llc = LlcModel::new(12 * MB);
        let friendly = demand(0.5, 0.01, 0.03, 1);
        let alone = llc.occupancies(&[friendly])[0].miss_rate;
        let crowded = llc.occupancies(&[
            friendly,
            demand(22.0, 0.4, 0.7, 64),
            demand(22.0, 0.4, 0.7, 64),
            demand(22.0, 0.4, 0.7, 64),
        ])[0]
            .miss_rate;
        assert!(crowded <= 0.03 + 1e-9);
        assert!(crowded - alone < 0.02);
    }

    #[test]
    fn occupancy_conserved() {
        let llc = LlcModel::new(12 * MB);
        let occ = llc.occupancies(&[
            demand(15.0, 0.05, 0.5, 6),
            demand(16.0, 0.05, 0.5, 8),
            demand(22.0, 0.4, 0.7, 64),
            demand(0.5, 0.01, 0.03, 1),
        ]);
        let total = LlcModel::total_occupancy(&occ);
        assert!(total <= 12.0 * MB as f64 + 1.0, "total={total}");
    }

    #[test]
    fn zero_rpti_vcpu_occupies_nothing() {
        let llc = LlcModel::new(12 * MB);
        let occ = llc.occupancies(&[demand(0.0, 0.01, 0.5, 6), demand(22.0, 0.4, 0.7, 64)]);
        assert_eq!(occ[0].occupancy_bytes, 0.0);
    }

    #[test]
    fn runtime_share_scales_demand() {
        let llc = LlcModel::new(12 * MB);
        let mut half = demand(20.0, 0.1, 0.6, 16);
        half.runtime_share = 0.5;
        let full = demand(20.0, 0.1, 0.6, 16);
        let occ = llc.occupancies(&[half, full]);
        assert!(occ[0].occupancy_bytes < occ[1].occupancy_bytes);
    }

    #[test]
    fn empty_input_is_empty() {
        let llc = LlcModel::new(12 * MB);
        assert!(llc.occupancies(&[]).is_empty());
    }

    #[test]
    fn more_thrashers_spread_pain() {
        // Two sockets' worth of thrashers on one socket should miss more in
        // aggregate than one thrasher alone: this is the imbalance vProbe's
        // partitioning removes.
        let llc = LlcModel::new(12 * MB);
        let one = llc.occupancies(&[demand(22.0, 0.4, 0.7, 64)]);
        let four = llc.occupancies(&[
            demand(22.0, 0.4, 0.7, 64),
            demand(22.0, 0.4, 0.7, 64),
            demand(22.0, 0.4, 0.7, 64),
            demand(22.0, 0.4, 0.7, 64),
        ]);
        assert!(four[0].miss_rate > one[0].miss_rate);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    const MB: u64 = 1024 * 1024;

    fn arb_demand() -> impl Strategy<Value = LlcDemand> {
        (0.0f64..40.0, 0.0f64..0.5, 1u64..128, 0.0f64..=1.0).prop_map(
            |(rpti, min_m, ws_mb, share)| LlcDemand {
                rpti,
                curve: MissCurve::new(min_m, (min_m + 0.3).min(1.0), ws_mb * MB),
                runtime_share: share,
            },
        )
    }

    proptest! {
        #[test]
        fn occupancy_never_exceeds_capacity(demands in prop::collection::vec(arb_demand(), 0..12)) {
            let llc = LlcModel::new(12 * MB);
            let occ = llc.occupancies(&demands);
            let total = LlcModel::total_occupancy(&occ);
            prop_assert!(total <= 12.0 * MB as f64 * (1.0 + 1e-9));
        }

        #[test]
        fn miss_rates_within_curve_bounds(demands in prop::collection::vec(arb_demand(), 1..12)) {
            let llc = LlcModel::new(12 * MB);
            let occ = llc.occupancies(&demands);
            for (d, o) in demands.iter().zip(occ.iter()) {
                prop_assert!(o.miss_rate >= d.curve.min_miss - 1e-9);
                prop_assert!(o.miss_rate <= d.curve.max_miss + 1e-9);
            }
        }

        #[test]
        fn occupancy_never_exceeds_working_set(demands in prop::collection::vec(arb_demand(), 1..12)) {
            let llc = LlcModel::new(12 * MB);
            let occ = llc.occupancies(&demands);
            for (d, o) in demands.iter().zip(occ.iter()) {
                prop_assert!(o.occupancy_bytes <= d.curve.ws_bytes as f64 + 1.0);
            }
        }
    }
}
