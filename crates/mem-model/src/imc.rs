//! Integrated memory controller (IMC) contention.
//!
//! Each node's memory controller is modeled as a queueing server: as the
//! aggregate demand on a controller approaches its bandwidth, per-access
//! latency inflates like an M/M/1 queue, `1 / (1 - u)`, with utilization
//! capped so the multiplier stays finite. Demand above the cap additionally
//! throttles throughput (accesses simply take longer than the quantum
//! allows), which the engine realizes through the inflated latency.


/// Queueing model of one node's memory controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImcModel {
    /// Peak sustainable bandwidth, bytes/second.
    pub bandwidth_bytes_per_s: u64,
    /// Utilization cap; the latency multiplier saturates at
    /// `1 / (1 - cap)`.
    pub utilization_cap: f64,
}

impl ImcModel {
    pub fn new(bandwidth_bytes_per_s: u64) -> Self {
        assert!(bandwidth_bytes_per_s > 0, "IMC bandwidth must be nonzero");
        ImcModel {
            bandwidth_bytes_per_s,
            utilization_cap: 0.95,
        }
    }

    /// Utilization of the controller given `demand` bytes/second.
    #[inline]
    pub fn utilization(&self, demand_bytes_per_s: f64) -> f64 {
        (demand_bytes_per_s / self.bandwidth_bytes_per_s as f64).max(0.0)
    }

    /// Latency multiplier at the given demand: 1.0 when idle, rising
    /// hyperbolically toward `1/(1-cap)` ≈ 20× at saturation.
    /// Inlined: the engine evaluates this once per node per fixed-point
    /// round, inside the hottest loop of the simulator.
    #[inline]
    pub fn latency_multiplier(&self, demand_bytes_per_s: f64) -> f64 {
        let u = self.utilization(demand_bytes_per_s).min(self.utilization_cap);
        1.0 / (1.0 - u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_controller_has_unit_multiplier() {
        let imc = ImcModel::new(25_600_000_000);
        assert_eq!(imc.latency_multiplier(0.0), 1.0);
    }

    #[test]
    fn multiplier_grows_with_demand() {
        let imc = ImcModel::new(25_600_000_000);
        let half = imc.latency_multiplier(12_800_000_000.0);
        assert!((half - 2.0).abs() < 1e-9);
        let m90 = imc.latency_multiplier(0.9 * 25_600_000_000.0);
        assert!((m90 - 10.0).abs() < 1e-6);
    }

    #[test]
    fn multiplier_saturates_at_cap() {
        let imc = ImcModel::new(1_000_000_000);
        let at_cap = imc.latency_multiplier(0.95e9);
        let over = imc.latency_multiplier(10e9);
        assert!((at_cap - 20.0).abs() < 1e-6);
        assert_eq!(at_cap, over);
    }

    #[test]
    fn utilization_is_linear() {
        let imc = ImcModel::new(10);
        assert!((imc.utilization(5.0) - 0.5).abs() < 1e-12);
        assert!((imc.utilization(20.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_multiplier() {
        let imc = ImcModel::new(1_000_000);
        let mut prev = 0.0;
        for i in 0..20 {
            let m = imc.latency_multiplier(i as f64 * 100_000.0);
            assert!(m >= prev);
            prev = m;
        }
    }
}
