//! The pre-SoA per-quantum solve, kept verbatim as the bit-exactness
//! oracle.
//!
//! [`ReferenceEngine`] is the engine exactly as it shipped before the
//! data-oriented rewrite: per-usage structs, a full LLC re-solve every
//! quantum, results rewritten every fixed-point round. The rewritten
//! [`MemoryEngine`](crate::MemoryEngine) must reproduce its output bit for
//! bit in exact mode; the equivalence proptests in this module and the
//! machine-level byte-equality matrix in the workspace tests pin that.
//! Keeping the original around also gives CI an `--reference-engine` sweep
//! to byte-diff against and bisection a known-good baseline.
//!
//! This module is intentionally frozen: performance work happens in
//! [`crate::engine`], not here.

use crate::engine::{
    round_to_u64, ContentionSnapshot, EngineParams, QuantumUsage, VcpuQuantumResult,
    FIXED_POINT_ROUNDS,
};
use crate::imc::ImcModel;
use crate::latency::LatencyParams;
use crate::llc::{LlcDemand, LlcModel, LlcOccupancy, LlcScratch};
use crate::qpi::QpiModel;
use numa_topo::Topology;
use sim_core::SimDuration;

/// Reusable buffers for [`ReferenceEngine::step`].
#[derive(Debug, Clone, Default)]
struct StepScratch {
    per_node: Vec<Vec<usize>>,
    miss_rate: Vec<f64>,
    demands: Vec<LlcDemand>,
    node_demand_bytes: Vec<f64>,
    pair_traffic_bytes: Vec<f64>,
    node_accesses: Vec<u64>,
    /// Per-usage values that do not change across fixed-point rounds,
    /// hoisted out of the round loop (identical expressions, so identical
    /// bits — pinned by the golden machine test).
    inv: Vec<UsageInv>,
    /// Flat list of each usage's nonzero access-distribution entries;
    /// `nz_start[i]..nz_start[i+1]` indexes usage `i`'s slice.
    nz: Vec<NzFrac>,
    nz_start: Vec<u32>,
    /// Per-round miss-latency matrix, row-major `[run_node][home]`.
    miss_cycles_matrix: Vec<f64>,
    llc_occ: Vec<LlcOccupancy>,
    llc_scratch: LlcScratch,
}

/// Round-invariant per-usage terms of the fixed-point solve.
#[derive(Debug, Clone, Copy, Default)]
struct UsageInv {
    run_node: u32,
    /// `rpti / 1000`.
    refs_per_instr: f64,
    /// Post-sharing, post-warmup miss rate.
    m: f64,
    /// `(1 - m) * llc_hit_cycles`.
    hit_term: f64,
    mlp: f64,
    base_cpi: f64,
    /// Usable core cycles this quantum.
    cycles: f64,
}

/// One nonzero entry of a usage's node-access distribution.
#[derive(Debug, Clone, Copy)]
struct NzFrac {
    /// Row-major `run_node * n + home` pair index.
    pair: u32,
    home: u32,
    frac: f64,
}

/// The frozen pre-rewrite memory engine (see the module docs).
#[derive(Debug, Clone)]
pub struct ReferenceEngine {
    params: EngineParams,
    num_nodes: usize,
    llc: Vec<LlcModel>,
    imc: Vec<ImcModel>,
    local_latency_ns: Vec<f64>,
    qpi: Vec<Option<QpiModel>>, // per pair, row-major
    hop_latency_ns: Vec<f64>,   // per pair, row-major
    latency: LatencyParams,
    line_bytes: u32,
    freq_mhz: u32,
    imc_mult: Vec<f64>,
    qpi_mult: Vec<f64>, // per pair, row-major
    scratch: StepScratch,
    results: Vec<VcpuQuantumResult>,
    stationary: bool,
}

impl ReferenceEngine {
    /// Build the engine from a validated topology with default calibration.
    pub fn new(topo: &Topology) -> Self {
        ReferenceEngine::with_params(topo, EngineParams::default())
    }

    /// Build with explicit calibration parameters.
    pub fn with_params(topo: &Topology, params: EngineParams) -> Self {
        let n = topo.num_nodes();
        let mut llc = Vec::with_capacity(n);
        let mut imc = Vec::with_capacity(n);
        let mut local_latency_ns = Vec::with_capacity(n);
        let mut line_bytes = 64;
        for node in topo.nodes() {
            let cfg = topo.node_config(node);
            llc.push(LlcModel::new(cfg.llc.size_bytes));
            imc.push(ImcModel::new(
                ((cfg.imc_bandwidth_bytes_per_s as f64) * params.sustained_imc_frac) as u64,
            ));
            local_latency_ns.push(cfg.local_latency_ns);
            line_bytes = cfg.llc.line_bytes;
        }
        let mut qpi = vec![None; n * n];
        let mut hop_latency_ns = vec![0.0; n * n];
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a == b {
                    continue;
                }
                // Parallel links between the pair share the traffic.
                let links: Vec<_> = topo.links().iter().filter(|l| l.connects(a, b)).collect();
                if let Some(first) = links.first() {
                    let idx = a.index() * n + b.index();
                    qpi[idx] = Some(QpiModel::new(
                        ((first.bandwidth_bytes_per_s as f64) * params.sustained_qpi_frac) as u64,
                        links.len() as u32,
                    ));
                    hop_latency_ns[idx] = first.hop_latency_ns;
                }
            }
        }
        ReferenceEngine {
            params,
            num_nodes: n,
            llc,
            imc,
            local_latency_ns,
            qpi,
            hop_latency_ns,
            latency: LatencyParams::new(topo.freq_mhz()),
            line_bytes,
            freq_mhz: topo.freq_mhz(),
            imc_mult: vec![1.0; n],
            qpi_mult: vec![1.0; n * n],
            scratch: StepScratch::default(),
            results: Vec::new(),
            stationary: false,
        }
    }

    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    pub fn contention(&self) -> ContentionSnapshot {
        ContentionSnapshot {
            imc_multiplier: self.imc_mult.clone(),
            qpi_multiplier: self.qpi_mult.clone(),
        }
    }

    /// Resolve one quantum (see [`crate::MemoryEngine::step`]).
    pub fn step(&mut self, quantum: SimDuration, usages: &[QuantumUsage]) -> Vec<VcpuQuantumResult> {
        self.step_ref(quantum, usages).to_vec()
    }

    /// Resolve up to `max_quanta` consecutive identical quanta with one
    /// solve (see [`crate::MemoryEngine::step_batch`]).
    pub fn step_batch(
        &mut self,
        quantum: SimDuration,
        usages: &[QuantumUsage],
        max_quanta: u64,
    ) -> (&[VcpuQuantumResult], u64) {
        self.step_ref(quantum, usages);
        let covered = if self.stationary { max_quanta.max(1) } else { 1 };
        (&self.results, covered)
    }

    /// Whether the most recent solve was stationary.
    pub fn last_step_stationary(&self) -> bool {
        self.stationary
    }

    /// Results of the most recent solve.
    pub fn last_results(&self) -> &[VcpuQuantumResult] {
        &self.results
    }

    /// Detach the pooled results buffer (see
    /// [`crate::MemoryEngine::take_results`]).
    pub fn take_results(&mut self) -> Vec<VcpuQuantumResult> {
        std::mem::take(&mut self.results)
    }

    /// Return a buffer taken with [`ReferenceEngine::take_results`].
    pub fn put_back_results(&mut self, results: Vec<VcpuQuantumResult>) {
        self.results = results;
    }

    /// Allocation-free form of [`ReferenceEngine::step`].
    pub fn step_ref(
        &mut self,
        quantum: SimDuration,
        usages: &[QuantumUsage],
    ) -> &[VcpuQuantumResult] {
        let quantum_us = quantum.as_micros() as f64;
        assert!(quantum_us > 0.0, "zero quantum");

        // Detach the scratch buffers so the solve can borrow `&self`.
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut results = std::mem::take(&mut self.results);

        // 1. LLC sharing per node.
        scratch.per_node.resize(self.num_nodes, Vec::new());
        for members in scratch.per_node.iter_mut() {
            members.clear();
        }
        for (i, u) in usages.iter().enumerate() {
            debug_assert!(
                (u.profile.node_access_dist.len()) == self.num_nodes,
                "profile node distribution has wrong arity"
            );
            scratch.per_node[u.node.index()].push(i);
        }
        scratch.miss_rate.clear();
        scratch.miss_rate.resize(usages.len(), 0.0);
        for (node, members) in scratch.per_node.iter().enumerate() {
            if members.is_empty() {
                continue;
            }
            scratch.demands.clear();
            scratch.demands.extend(members.iter().map(|&i| LlcDemand {
                rpti: usages[i].rpti(),
                curve: usages[i].profile.miss_curve,
                runtime_share: usages[i].runtime_share,
            }));
            self.llc[node].occupancies_into(
                &scratch.demands,
                &mut scratch.llc_occ,
                &mut scratch.llc_scratch,
            );
            for (&i, o) in members.iter().zip(scratch.llc_occ.iter()) {
                let boosted = o.miss_rate * usages[i].cold_miss_boost.max(1.0);
                scratch.miss_rate[i] =
                    boosted.min(usages[i].profile.miss_curve.max_miss.max(o.miss_rate));
            }
        }

        // Hoist everything that does not change across fixed-point rounds.
        scratch.inv.clear();
        scratch.nz.clear();
        scratch.nz_start.clear();
        for (i, u) in usages.iter().enumerate() {
            scratch.nz_start.push(scratch.nz.len() as u32);
            let run_node = u.node.index();
            for (home, &frac) in u.profile.node_access_dist.iter().enumerate() {
                if frac <= 0.0 {
                    continue;
                }
                scratch.nz.push(NzFrac {
                    pair: (run_node * self.num_nodes + home) as u32,
                    home: home as u32,
                    frac,
                });
            }
            let m = scratch.miss_rate[i];
            let usable_us = (quantum_us * u.runtime_share - u.overhead_us).max(0.0);
            scratch.inv.push(UsageInv {
                run_node: run_node as u32,
                refs_per_instr: u.rpti() / 1_000.0,
                m,
                hit_term: (1.0 - m) * self.latency.llc_hit_cycles,
                mlp: u.profile.mlp.max(1.0),
                base_cpi: u.profile.base_cpi,
                cycles: usable_us * self.freq_mhz as f64,
            });
        }
        scratch.nz_start.push(scratch.nz.len() as u32);

        // 2. Solve the contention fixed point by damped iteration from the
        // previous quantum's state.
        let quantum_s = quantum_us / 1e6;
        let mut imc_mult = self.imc_mult.clone();
        let mut qpi_mult = self.qpi_mult.clone();
        let mut round = 0;
        loop {
            scratch.node_demand_bytes.clear();
            scratch.node_demand_bytes.resize(self.num_nodes, 0.0);
            scratch.pair_traffic_bytes.clear();
            scratch
                .pair_traffic_bytes
                .resize(self.num_nodes * self.num_nodes, 0.0);

            scratch.miss_cycles_matrix.clear();
            for run_node in 0..self.num_nodes {
                for (home, &home_mult) in imc_mult.iter().enumerate() {
                    let pair = run_node * self.num_nodes + home;
                    let hop = if home == run_node {
                        None
                    } else {
                        Some(self.hop_latency_ns[pair])
                    };
                    scratch.miss_cycles_matrix.push(self.latency.miss_cycles(
                        self.local_latency_ns[home],
                        home_mult,
                        hop,
                        qpi_mult[pair],
                    ));
                }
            }

            for (i, u) in usages.iter().enumerate() {
                let inv = &scratch.inv[i];
                let run_node = inv.run_node as usize;
                let nz =
                    &scratch.nz[scratch.nz_start[i] as usize..scratch.nz_start[i + 1] as usize];

                // Average cycle cost of a miss over the access distribution.
                let mut miss_cycles = 0.0;
                for e in nz {
                    miss_cycles += e.frac * scratch.miss_cycles_matrix[e.pair as usize];
                }

                let cpi = inv.base_cpi
                    + inv.refs_per_instr * (inv.hit_term + inv.m * miss_cycles) / inv.mlp;
                let instructions = (inv.cycles / cpi) as u64;
                let llc_refs = round_to_u64(instructions as f64 * inv.refs_per_instr);
                let llc_misses = round_to_u64(llc_refs as f64 * inv.m);

                scratch.node_accesses.clear();
                scratch.node_accesses.resize(self.num_nodes, 0);
                let mut assigned = 0u64;
                for e in nz {
                    let c = (llc_misses as f64 * e.frac) as u64;
                    scratch.node_accesses[e.home as usize] = c;
                    assigned += c;
                }
                // Give rounding remainder to the run node (arbitrary but local).
                scratch.node_accesses[run_node] += llc_misses - assigned;

                let local_accesses = scratch.node_accesses[run_node];
                let remote_accesses = llc_misses - local_accesses;

                let _ = self.line_bytes;
                for e in nz {
                    let home = e.home as usize;
                    if home == run_node {
                        continue;
                    }
                    let bytes =
                        scratch.node_accesses[home] as f64 * self.params.traffic_per_miss_bytes;
                    scratch.node_demand_bytes[home] += bytes * self.params.remote_imc_overhead;
                    scratch.pair_traffic_bytes[run_node * self.num_nodes + home] += bytes;
                    scratch.pair_traffic_bytes[home * self.num_nodes + run_node] += bytes;
                }
                let local_bytes =
                    scratch.node_accesses[run_node] as f64 * self.params.traffic_per_miss_bytes;
                scratch.node_demand_bytes[run_node] += local_bytes;

                if i < results.len() {
                    let out = &mut results[i];
                    out.key = u.key;
                    out.instructions = instructions;
                    out.llc_refs = llc_refs;
                    out.llc_misses = llc_misses;
                    out.local_accesses = local_accesses;
                    out.remote_accesses = remote_accesses;
                    out.node_accesses.clear();
                    out.node_accesses.extend_from_slice(&scratch.node_accesses);
                    out.effective_cpi = cpi;
                    out.miss_rate = inv.m;
                } else {
                    results.push(VcpuQuantumResult {
                        key: u.key,
                        instructions,
                        llc_refs,
                        llc_misses,
                        local_accesses,
                        remote_accesses,
                        node_accesses: scratch.node_accesses.clone(),
                        effective_cpi: cpi,
                        miss_rate: inv.m,
                    });
                }
            }

            // Recompute multipliers from this round's demand and relax.
            let damp = if round == 0 { 1.0 } else { 0.5 };
            let mut changed = false;
            for (node, mult) in imc_mult.iter_mut().enumerate() {
                let target =
                    self.imc[node].latency_multiplier(scratch.node_demand_bytes[node] / quantum_s);
                let before = *mult;
                *mult += damp * (target - *mult);
                changed |= *mult != before;
            }
            for a in 0..self.num_nodes {
                for b in 0..self.num_nodes {
                    let idx = a * self.num_nodes + b;
                    let target = match &self.qpi[idx] {
                        Some(q) => q.latency_multiplier(scratch.pair_traffic_bytes[idx] / quantum_s),
                        None => 1.0,
                    };
                    let before = qpi_mult[idx];
                    qpi_mult[idx] += damp * (target - qpi_mult[idx]);
                    changed |= qpi_mult[idx] != before;
                }
            }
            round += 1;
            if round == FIXED_POINT_ROUNDS || !changed {
                break;
            }
        }
        results.truncate(usages.len());
        self.stationary = imc_mult == self.imc_mult && qpi_mult == self.qpi_mult;
        self.imc_mult = imc_mult;
        self.qpi_mult = qpi_mult;
        self.scratch = scratch;
        self.results = results;
        &self.results
    }
}

/// Equivalence pins: the incremental SoA engine in exact mode must be
/// bitwise indistinguishable from this frozen reference on arbitrary
/// usage streams — including membership churn, placement flips, intensity
/// noise, warmup boosts, and overhead spikes, i.e. exactly the events the
/// dirty bits must notice.
#[cfg(test)]
mod equiv_proptests {
    use super::*;
    use crate::engine::{AccessProfile, MemoryEngine};
    use crate::MissCurve;
    use numa_topo::{presets, NodeId};
    use proptest::prelude::*;

    const MB: u64 = 1024 * 1024;

    /// One slot of one step: which profile ran where, under what momentary
    /// conditions.
    #[derive(Debug, Clone)]
    struct SlotSpec {
        prof: usize,
        node: u16,
        share: f64,
        scale: f64,
        boost: f64,
        overhead: f64,
    }

    fn profiles() -> Vec<AccessProfile> {
        vec![
            // LLC-fitting, mostly-local (an lu-like phase).
            AccessProfile {
                rpti: 18.0,
                base_cpi: 1.1,
                miss_curve: MissCurve::new(0.05, 0.6, 10 * MB),
                mlp: 2.0,
                node_access_dist: vec![0.7, 0.3],
            },
            // LLC-thrashing, mostly-remote.
            AccessProfile {
                rpti: 26.0,
                base_cpi: 0.9,
                miss_curve: MissCurve::new(0.4, 0.7, 64 * MB),
                mlp: 4.0,
                node_access_dist: vec![0.2, 0.8],
            },
            // CPU-only (the hungry loop).
            AccessProfile::cpu_only(1.0, 2),
        ]
    }

    fn arb_slot() -> impl Strategy<Value = SlotSpec> {
        (0usize..3, 0u16..2, 0.05f64..1.0, 0.5f64..1.6, 1.0f64..4.0, 0.0f64..300.0).prop_map(
            |(prof, node, share, scale, boost, overhead)| SlotSpec {
                prof,
                node,
                share,
                scale,
                boost,
                overhead,
            },
        )
    }

    fn arb_stream() -> impl Strategy<Value = Vec<Vec<SlotSpec>>> {
        // Steps of varying slot counts: lengthening/shortening the usage
        // list exercises the shape-change rebuild; repeated draws of
        // near-identical specs exercise partial dirtiness.
        proptest::collection::vec(proptest::collection::vec(arb_slot(), 0..8), 1..10)
    }

    fn build_usages<'a>(step: &[SlotSpec], profs: &'a [AccessProfile]) -> Vec<QuantumUsage<'a>> {
        step.iter()
            .enumerate()
            .map(|(slot, s)| QuantumUsage {
                key: slot as u64 + 1,
                node: NodeId::new(s.node),
                runtime_share: s.share,
                profile: &profs[s.prof],
                rpti_scale: s.scale,
                cold_miss_boost: s.boost,
                overhead_us: s.overhead,
            })
            .collect()
    }

    proptest! {
        #[test]
        fn soa_exact_matches_reference_stepwise(stream in arb_stream()) {
            let topo = presets::xeon_e5620();
            let profs = profiles();
            let mut soa = MemoryEngine::new(&topo);
            let mut reference = ReferenceEngine::new(&topo);
            let quantum = SimDuration::from_millis(1);
            for (step_no, step) in stream.iter().enumerate() {
                let usages = build_usages(step, &profs);
                let a = soa.step_ref(quantum, &usages).to_vec();
                let b = reference.step_ref(quantum, &usages).to_vec();
                prop_assert_eq!(&a, &b, "results diverged at step {}", step_no);
                prop_assert_eq!(
                    soa.contention(),
                    reference.contention(),
                    "multipliers diverged at step {}",
                    step_no
                );
                prop_assert_eq!(
                    soa.last_step_stationary(),
                    reference.last_step_stationary(),
                    "stationarity diverged at step {}",
                    step_no
                );
            }
        }

        #[test]
        fn warm_start_equals_cold_solve(stream in arb_stream()) {
            // Dirty-bit soundness: at every step, an engine that diffs
            // against its warm cache must produce the same bytes as its
            // clone with the cache dropped (which re-solves everything
            // from the same multipliers). A skipped node whose inputs
            // actually changed would show up here.
            let topo = presets::xeon_e5620();
            let profs = profiles();
            let mut warm = MemoryEngine::new(&topo);
            let quantum = SimDuration::from_millis(1);
            for (step_no, step) in stream.iter().enumerate() {
                let usages = build_usages(step, &profs);
                let mut cold = warm.clone();
                cold.invalidate_cache();
                let a = warm.step_ref(quantum, &usages).to_vec();
                let b = cold.step_ref(quantum, &usages).to_vec();
                prop_assert_eq!(&a, &b, "warm/cold diverged at step {}", step_no);
                prop_assert_eq!(
                    warm.contention(),
                    cold.contention(),
                    "warm/cold multipliers diverged at step {}",
                    step_no
                );
            }
        }

        #[test]
        fn repeated_steps_hit_the_whole_step_skip_correctly(step in proptest::collection::vec(arb_slot(), 1..6)) {
            // Drive the same usage list until the fixed point converges
            // and beyond: the whole-step skip must keep reproducing what
            // the reference (which never skips) produces.
            let topo = presets::xeon_e5620();
            let profs = profiles();
            let mut soa = MemoryEngine::new(&topo);
            let mut reference = ReferenceEngine::new(&topo);
            let quantum = SimDuration::from_millis(1);
            let usages = build_usages(&step, &profs);
            for rep in 0..16 {
                let a = soa.step_ref(quantum, &usages).to_vec();
                let b = reference.step_ref(quantum, &usages).to_vec();
                prop_assert_eq!(&a, &b, "results diverged at repeat {}", rep);
                prop_assert_eq!(
                    soa.last_step_stationary(),
                    reference.last_step_stationary(),
                    "stationarity diverged at repeat {}",
                    rep
                );
            }
        }
    }
}
