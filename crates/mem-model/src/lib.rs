//! Memory-system behaviour model.
//!
//! This crate models the four performance-degrading factors the vProbe
//! paper identifies (§II-A) for memory-intensive applications on NUMA
//! servers:
//!
//! 1. **remote memory access latency** — [`latency`] charges an extra
//!    interconnect hop for accesses that land on a node other than the one
//!    the VCPU is running on;
//! 2. **memory-controller (IMC) contention** — [`imc`] turns per-node
//!    aggregate demand into a queueing-delay multiplier;
//! 3. **interconnect link contention** — [`qpi`] does the same for
//!    cross-node traffic;
//! 4. **LLC contention** — [`llc`] splits each socket's shared cache among
//!    co-running VCPUs in proportion to their demand and feeds the resulting
//!    occupancy through each workload's miss-rate curve ([`curve`]).
//!
//! [`pages`] models Xen-style domain memory placement (machine pages are
//! fixed at domain creation; a VCPU's per-node access distribution follows
//! the guest thread it hosts). [`engine`] composes all of the above into a
//! per-quantum resolution step used by the hypervisor simulator.

pub mod curve;
pub mod engine;
pub mod imc;
pub mod latency;
pub mod llc;
pub mod pages;
pub mod qpi;
pub mod reference;
pub mod select;

pub use curve::MissCurve;
pub use engine::{
    AccessProfile, ApproxParams, EngineMode, EnginePerf, MemoryEngine, QuantumUsage,
    VcpuQuantumResult,
};
pub use imc::ImcModel;
pub use latency::LatencyParams;
pub use llc::{LlcModel, LlcOccupancy};
pub use pages::{AllocPolicy, NodeFree, VmMemoryLayout};
pub use qpi::QpiModel;
pub use reference::ReferenceEngine;
pub use select::{AnyEngine, EngineSelect};
