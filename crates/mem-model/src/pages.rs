//! Domain (VM) memory placement and per-thread access distributions.
//!
//! In Xen the machine pages backing a domain are fixed when the domain is
//! created; the guest's physical address space is a fixed mapping onto NUMA
//! nodes from then on. Xen 4.0.1 — the base of the paper's prototype — is
//! NUMA-oblivious and simply satisfies each allocation from the node(s)
//! with free memory, which is why the paper's motivation experiment
//! (Fig. 1) sees >80 % remote accesses once the Credit scheduler drags
//! VCPUs away from their memory.
//!
//! We model a VM's memory as a linear guest address space mapped onto nodes
//! in allocation order, and each guest *thread* as owning a contiguous
//! private slice of that space plus a share of the VM-wide common region.
//! A thread's per-node access distribution is then fully determined by
//! where its slice landed — exactly the quantity the paper's *memory node
//! affinity* (Eq. 1) estimates from PMU data.

use numa_topo::NodeId;
use sim_core::SimError;

/// Free memory per node, consumed as VMs are placed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeFree {
    free: Vec<u64>,
}

impl NodeFree {
    pub fn new(per_node: Vec<u64>) -> Self {
        NodeFree { free: per_node }
    }

    pub fn num_nodes(&self) -> usize {
        self.free.len()
    }

    pub fn free_on(&self, node: NodeId) -> u64 {
        self.free[node.index()]
    }

    pub fn total_free(&self) -> u64 {
        self.free.iter().sum()
    }

    fn take(&mut self, node: NodeId, bytes: u64) {
        debug_assert!(self.free[node.index()] >= bytes);
        self.free[node.index()] -= bytes;
    }
}

/// How a VM's memory is placed across nodes at creation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AllocPolicy {
    /// Xen 4.0.1 behaviour: allocate greedily from the node with the most
    /// free memory, spilling to the next-freest when one runs out.
    MostFree,
    /// Pin the whole allocation to one node (spills to others only if full).
    OnNode(NodeId),
    /// Interleave in `chunk_bytes` chunks round-robin over nodes with space.
    Striped { chunk_bytes: u64 },
    /// Split evenly across all nodes (the paper gives VM1 "15GB memory,
    /// which is split into two nodes").
    SplitEven,
}

/// The placement of one VM's memory: how many bytes of the linear guest
/// address space live on each node, in allocation order.
#[derive(Debug, Clone, PartialEq)]
pub struct VmMemoryLayout {
    /// Consecutive extents of the guest address space: `(node, bytes)`.
    extents: Vec<(NodeId, u64)>,
    total_bytes: u64,
    num_nodes: usize,
    /// Bumped every time the page map actually changes (a migration that
    /// moves at least one byte). Lets consumers — thread-distribution
    /// caches, the incremental engine's dirty tracking — detect "pages
    /// moved" with one integer compare instead of diffing extents.
    generation: u64,
}

impl VmMemoryLayout {
    /// Place `bytes` of VM memory according to `policy`, consuming from
    /// `free`. Fails if the machine lacks space.
    pub fn allocate(
        bytes: u64,
        policy: AllocPolicy,
        free: &mut NodeFree,
    ) -> Result<Self, SimError> {
        if bytes == 0 {
            return Err(SimError::InvalidConfig("VM memory must be nonzero".into()));
        }
        if free.total_free() < bytes {
            return Err(SimError::ResourceExhausted(format!(
                "need {bytes} bytes, only {} free",
                free.total_free()
            )));
        }
        let n = free.num_nodes();
        if n == 0 {
            return Err(SimError::InvalidConfig(
                "topology has no memory nodes".into(),
            ));
        }
        let mut extents: Vec<(NodeId, u64)> = Vec::new();
        let push = |extents: &mut Vec<(NodeId, u64)>, node: NodeId, amount: u64| {
            if amount == 0 {
                return;
            }
            if let Some(last) = extents.last_mut() {
                if last.0 == node {
                    last.1 += amount;
                    return;
                }
            }
            extents.push((node, amount));
        };
        match policy {
            AllocPolicy::MostFree => {
                let mut remaining = bytes;
                while remaining > 0 {
                    let node = (0..n)
                        .map(NodeId::from_index)
                        .max_by_key(|&nd| (free.free_on(nd), std::cmp::Reverse(nd.index())))
                        .ok_or_else(|| {
                            SimError::InvalidConfig("topology has no memory nodes".into())
                        })?;
                    let take = remaining.min(free.free_on(node));
                    if take == 0 {
                        return Err(SimError::ResourceExhausted(
                            "no node has free memory left".into(),
                        ));
                    }
                    free.take(node, take);
                    push(&mut extents, node, take);
                    remaining -= take;
                }
            }
            AllocPolicy::OnNode(preferred) => {
                if preferred.index() >= n {
                    return Err(SimError::InvalidConfig(format!(
                        "node {preferred} does not exist"
                    )));
                }
                let mut remaining = bytes;
                let take = remaining.min(free.free_on(preferred));
                free.take(preferred, take);
                push(&mut extents, preferred, take);
                remaining -= take;
                // Spill in node order.
                for i in 0..n {
                    if remaining == 0 {
                        break;
                    }
                    let node = NodeId::from_index(i);
                    if node == preferred {
                        continue;
                    }
                    let take = remaining.min(free.free_on(node));
                    free.take(node, take);
                    push(&mut extents, node, take);
                    remaining -= take;
                }
            }
            AllocPolicy::Striped { chunk_bytes } => {
                if chunk_bytes == 0 {
                    return Err(SimError::InvalidConfig("stripe chunk must be nonzero".into()));
                }
                let mut remaining = bytes;
                let mut i = 0usize;
                let mut stuck = 0usize;
                while remaining > 0 {
                    let node = NodeId::from_index(i % n);
                    i += 1;
                    let take = remaining.min(chunk_bytes).min(free.free_on(node));
                    if take == 0 {
                        stuck += 1;
                        if stuck >= n {
                            return Err(SimError::ResourceExhausted(
                                "no node has free memory left".into(),
                            ));
                        }
                        continue;
                    }
                    stuck = 0;
                    free.take(node, take);
                    push(&mut extents, node, take);
                    remaining -= take;
                }
            }
            AllocPolicy::SplitEven => {
                let per = bytes / n as u64;
                let mut remaining = bytes;
                for i in 0..n {
                    let node = NodeId::from_index(i);
                    let want = if i == n - 1 { remaining } else { per };
                    let take = want.min(free.free_on(node));
                    free.take(node, take);
                    push(&mut extents, node, take);
                    remaining -= take;
                }
                // Spill any shortfall wherever space remains.
                for i in 0..n {
                    if remaining == 0 {
                        break;
                    }
                    let node = NodeId::from_index(i);
                    let take = remaining.min(free.free_on(node));
                    free.take(node, take);
                    push(&mut extents, node, take);
                    remaining -= take;
                }
                if remaining > 0 {
                    return Err(SimError::ResourceExhausted(
                        "no node has free memory left".into(),
                    ));
                }
            }
        }
        debug_assert_eq!(extents.iter().map(|&(_, b)| b).sum::<u64>(), bytes);
        Ok(VmMemoryLayout {
            extents,
            total_bytes: bytes,
            num_nodes: n,
            generation: 0,
        })
    }

    /// Monotone page-map version: unchanged by no-op migrations, bumped
    /// whenever bytes actually move.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Bytes of this VM's memory on each node.
    pub fn node_bytes(&self) -> Vec<u64> {
        let mut v = vec![0u64; self.num_nodes];
        for &(node, bytes) in &self.extents {
            v[node.index()] += bytes;
        }
        v
    }

    /// Fraction of this VM's memory on each node.
    pub fn node_fractions(&self) -> Vec<f64> {
        self.node_bytes()
            .iter()
            .map(|&b| b as f64 / self.total_bytes as f64)
            .collect()
    }

    /// Per-node distribution of the guest-address range `[start, end)`.
    ///
    /// Used to compute where a thread's private slice landed.
    pub fn range_distribution(&self, start: u64, end: u64) -> Vec<f64> {
        assert!(start <= end && end <= self.total_bytes, "range out of bounds");
        let mut v = vec![0.0f64; self.num_nodes];
        if start == end {
            return v;
        }
        let len = (end - start) as f64;
        let mut offset = 0u64;
        for &(node, bytes) in &self.extents {
            let ext_start = offset;
            let ext_end = offset + bytes;
            let lo = start.max(ext_start);
            let hi = end.min(ext_end);
            if hi > lo {
                v[node.index()] += (hi - lo) as f64 / len;
            }
            offset = ext_end;
        }
        v
    }

    /// Migrate up to `max_bytes` of the guest-address range
    /// `[start, end)` to `to_node`, splitting extents as needed. Returns
    /// the number of bytes actually moved (bytes already on `to_node` are
    /// skipped and do not count against the budget).
    ///
    /// This models the hypervisor-level page migration the paper's §VI
    /// names as future work: the guest address space is untouched; only
    /// the machine frames behind it move.
    pub fn migrate_range(&mut self, start: u64, end: u64, to_node: NodeId, max_bytes: u64) -> u64 {
        assert!(start <= end && end <= self.total_bytes, "range out of bounds");
        assert!(to_node.index() < self.num_nodes, "target node out of range");
        if start == end || max_bytes == 0 {
            return 0;
        }
        let mut moved = 0u64;
        let mut out: Vec<(NodeId, u64)> = Vec::with_capacity(self.extents.len() + 2);
        let mut offset = 0u64;
        for &(node, bytes) in &self.extents {
            let ext_start = offset;
            let ext_end = offset + bytes;
            offset = ext_end;
            if node == to_node || ext_end <= start || ext_start >= end || moved >= max_bytes {
                out.push((node, bytes));
                continue;
            }
            // Overlap with the requested range, clipped by budget.
            let lo = start.max(ext_start);
            let hi = end.min(ext_end).min(lo.saturating_add(max_bytes - moved));
            moved += hi - lo;
            // Left remainder, migrated middle, right remainder.
            if lo > ext_start {
                out.push((node, lo - ext_start));
            }
            out.push((to_node, hi - lo));
            if ext_end > hi {
                out.push((node, ext_end - hi));
            }
        }
        // Re-coalesce adjacent same-node extents.
        let mut coalesced: Vec<(NodeId, u64)> = Vec::with_capacity(out.len());
        for (node, bytes) in out {
            if bytes == 0 {
                continue;
            }
            match coalesced.last_mut() {
                Some(last) if last.0 == node => last.1 += bytes,
                _ => coalesced.push((node, bytes)),
            }
        }
        self.extents = coalesced;
        if moved > 0 {
            self.generation += 1;
        }
        debug_assert_eq!(
            self.extents.iter().map(|&(_, b)| b).sum::<u64>(),
            self.total_bytes,
            "migration must conserve total memory"
        );
        moved
    }

    /// The private address range of thread `t` of `threads` (the slice
    /// [`VmMemoryLayout::thread_access_distribution`] derives its private
    /// part from) — the natural migration target for that thread.
    pub fn thread_range(&self, thread: usize, threads: usize) -> (u64, u64) {
        assert!(threads > 0 && thread < threads, "bad thread index");
        let slice = self.total_bytes / threads as u64;
        let start = slice * thread as u64;
        let end = if thread == threads - 1 {
            self.total_bytes
        } else {
            start + slice
        };
        (start, end)
    }

    /// Access distribution of thread `t` of `threads`, where each thread
    /// works a private equal slice of the address space and `shared_frac`
    /// of its accesses go to the VM-wide shared region (distributed like
    /// the whole VM's memory).
    ///
    /// This is the per-VCPU quantity vProbe's Eq. 1 estimates with PMU page
    /// counts.
    pub fn thread_access_distribution(
        &self,
        thread: usize,
        threads: usize,
        shared_frac: f64,
    ) -> Vec<f64> {
        assert!(threads > 0 && thread < threads, "bad thread index");
        let shared_frac = shared_frac.clamp(0.0, 1.0);
        let slice = self.total_bytes / threads as u64;
        let start = slice * thread as u64;
        let end = if thread == threads - 1 {
            self.total_bytes
        } else {
            start + slice
        };
        let private = self.range_distribution(start, end);
        let whole = self.node_fractions();
        private
            .iter()
            .zip(whole.iter())
            .map(|(&p, &w)| (1.0 - shared_frac) * p + shared_frac * w)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1024 * 1024 * 1024;

    fn two_nodes_12gb() -> NodeFree {
        NodeFree::new(vec![12 * GB, 12 * GB])
    }

    #[test]
    fn most_free_fills_first_node_first() {
        let mut free = two_nodes_12gb();
        let vm1 = VmMemoryLayout::allocate(8 * GB, AllocPolicy::MostFree, &mut free).unwrap();
        // node0 and node1 tie at 12 GB; tie-break prefers node0.
        assert_eq!(vm1.node_bytes(), vec![8 * GB, 0]);
        let vm2 = VmMemoryLayout::allocate(8 * GB, AllocPolicy::MostFree, &mut free).unwrap();
        // node1 now has more free (12 vs 4).
        assert_eq!(vm2.node_bytes(), vec![0, 8 * GB]);
        assert_eq!(free.free_on(NodeId::new(0)), 4 * GB);
        assert_eq!(free.free_on(NodeId::new(1)), 4 * GB);
    }

    #[test]
    fn most_free_spills_when_node_fills() {
        let mut free = NodeFree::new(vec![4 * GB, 2 * GB]);
        let vm = VmMemoryLayout::allocate(5 * GB, AllocPolicy::MostFree, &mut free).unwrap();
        let nb = vm.node_bytes();
        assert_eq!(nb.iter().sum::<u64>(), 5 * GB);
        assert!(nb[0] >= 3 * GB, "most memory should be on the freest node");
    }

    #[test]
    fn split_even_halves() {
        let mut free = two_nodes_12gb();
        let vm = VmMemoryLayout::allocate(15 * GB, AllocPolicy::SplitEven, &mut free).unwrap();
        let nb = vm.node_bytes();
        assert_eq!(nb[0] + nb[1], 15 * GB);
        let frac = vm.node_fractions();
        assert!((frac[0] - 0.5).abs() < 0.01, "fractions: {frac:?}");
    }

    #[test]
    fn on_node_prefers_then_spills() {
        let mut free = NodeFree::new(vec![2 * GB, 12 * GB]);
        let vm =
            VmMemoryLayout::allocate(4 * GB, AllocPolicy::OnNode(NodeId::new(0)), &mut free)
                .unwrap();
        assert_eq!(vm.node_bytes(), vec![2 * GB, 2 * GB]);
    }

    #[test]
    fn striped_interleaves() {
        let mut free = two_nodes_12gb();
        let vm = VmMemoryLayout::allocate(
            4 * GB,
            AllocPolicy::Striped { chunk_bytes: GB },
            &mut free,
        )
        .unwrap();
        assert_eq!(vm.node_bytes(), vec![2 * GB, 2 * GB]);
    }

    #[test]
    fn allocation_fails_when_machine_full() {
        let mut free = NodeFree::new(vec![GB, GB]);
        let err = VmMemoryLayout::allocate(3 * GB, AllocPolicy::MostFree, &mut free).unwrap_err();
        assert!(matches!(err, SimError::ResourceExhausted(_)));
    }

    #[test]
    fn zero_size_rejected() {
        let mut free = two_nodes_12gb();
        assert!(VmMemoryLayout::allocate(0, AllocPolicy::MostFree, &mut free).is_err());
    }

    #[test]
    fn range_distribution_tracks_extents() {
        let mut free = two_nodes_12gb();
        let vm = VmMemoryLayout::allocate(8 * GB, AllocPolicy::SplitEven, &mut free).unwrap();
        // First half on node0, second half on node1.
        let first = vm.range_distribution(0, 4 * GB);
        assert!((first[0] - 1.0).abs() < 1e-12);
        let second = vm.range_distribution(4 * GB, 8 * GB);
        assert!((second[1] - 1.0).abs() < 1e-12);
        let straddle = vm.range_distribution(2 * GB, 6 * GB);
        assert!((straddle[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn thread_distributions_are_heterogeneous_on_split_vm() {
        let mut free = two_nodes_12gb();
        let vm = VmMemoryLayout::allocate(8 * GB, AllocPolicy::SplitEven, &mut free).unwrap();
        let t0 = vm.thread_access_distribution(0, 4, 0.0);
        let t3 = vm.thread_access_distribution(3, 4, 0.0);
        assert!((t0[0] - 1.0).abs() < 1e-9, "thread 0 local to node0: {t0:?}");
        assert!((t3[1] - 1.0).abs() < 1e-9, "thread 3 local to node1: {t3:?}");
    }

    #[test]
    fn shared_fraction_blends_toward_vm_distribution() {
        let mut free = two_nodes_12gb();
        let vm = VmMemoryLayout::allocate(8 * GB, AllocPolicy::SplitEven, &mut free).unwrap();
        let t0 = vm.thread_access_distribution(0, 4, 1.0);
        let whole = vm.node_fractions();
        assert!((t0[0] - whole[0]).abs() < 1e-12);
        let half = vm.thread_access_distribution(0, 4, 0.5);
        assert!(half[0] > whole[0] && half[0] < 1.0);
    }

    #[test]
    fn distributions_sum_to_one() {
        let mut free = two_nodes_12gb();
        let vm = VmMemoryLayout::allocate(7 * GB, AllocPolicy::MostFree, &mut free).unwrap();
        for t in 0..5 {
            let d = vm.thread_access_distribution(t, 5, 0.3);
            let sum: f64 = d.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "dist {d:?}");
        }
    }
    #[test]
    fn migrate_range_moves_and_conserves() {
        let mut free = two_nodes_12gb();
        let mut vm = VmMemoryLayout::allocate(8 * GB, AllocPolicy::SplitEven, &mut free).unwrap();
        // First half on node0; move 1 GB of it to node1.
        let moved = vm.migrate_range(0, 4 * GB, NodeId::new(1), GB);
        assert_eq!(moved, GB);
        let nb = vm.node_bytes();
        assert_eq!(nb[0], 3 * GB);
        assert_eq!(nb[1], 5 * GB);
        assert_eq!(nb.iter().sum::<u64>(), 8 * GB);
    }

    #[test]
    fn migrate_range_skips_already_local_bytes() {
        let mut free = two_nodes_12gb();
        let mut vm = VmMemoryLayout::allocate(8 * GB, AllocPolicy::SplitEven, &mut free).unwrap();
        // Second half is already on node1: nothing to move.
        let moved = vm.migrate_range(4 * GB, 8 * GB, NodeId::new(1), GB);
        assert_eq!(moved, 0);
        assert_eq!(vm.node_bytes(), vec![4 * GB, 4 * GB]);
    }

    #[test]
    fn generation_tracks_real_moves_only() {
        let mut free = two_nodes_12gb();
        let mut vm = VmMemoryLayout::allocate(8 * GB, AllocPolicy::SplitEven, &mut free).unwrap();
        assert_eq!(vm.generation(), 0);
        // No-op migration (bytes already local): generation unchanged.
        vm.migrate_range(4 * GB, 8 * GB, NodeId::new(1), GB);
        assert_eq!(vm.generation(), 0);
        // Real move bumps it once per call.
        vm.migrate_range(0, 4 * GB, NodeId::new(1), GB);
        assert_eq!(vm.generation(), 1);
        vm.migrate_range(0, 4 * GB, NodeId::new(1), GB);
        assert_eq!(vm.generation(), 2);
        // Zero-budget call is a no-op.
        vm.migrate_range(0, 4 * GB, NodeId::new(1), 0);
        assert_eq!(vm.generation(), 2);
    }

    #[test]
    fn migrate_range_respects_budget() {
        let mut free = two_nodes_12gb();
        let mut vm = VmMemoryLayout::allocate(8 * GB, AllocPolicy::SplitEven, &mut free).unwrap();
        let moved = vm.migrate_range(0, 4 * GB, NodeId::new(1), 512 * 1024 * 1024);
        assert_eq!(moved, 512 * 1024 * 1024);
    }

    #[test]
    fn migration_changes_thread_distribution() {
        let mut free = two_nodes_12gb();
        let mut vm = VmMemoryLayout::allocate(8 * GB, AllocPolicy::SplitEven, &mut free).unwrap();
        let before = vm.thread_access_distribution(0, 4, 0.0);
        assert!((before[0] - 1.0).abs() < 1e-9);
        let (start, end) = vm.thread_range(0, 4);
        vm.migrate_range(start, end, NodeId::new(1), u64::MAX);
        let after = vm.thread_access_distribution(0, 4, 0.0);
        assert!((after[1] - 1.0).abs() < 1e-9, "thread 0 now node1-local: {after:?}");
    }

    #[test]
    fn thread_range_partitions_address_space() {
        let mut free = two_nodes_12gb();
        let vm = VmMemoryLayout::allocate(7 * GB, AllocPolicy::MostFree, &mut free).unwrap();
        let mut covered = 0;
        for t in 0..3 {
            let (s, e) = vm.thread_range(t, 3);
            assert_eq!(s, covered);
            covered = e;
        }
        assert_eq!(covered, 7 * GB);
    }
}


#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    const MB: u64 = 1024 * 1024;

    fn arb_layout() -> impl Strategy<Value = VmMemoryLayout> {
        (1u64..64, prop_oneof![
            Just(AllocPolicy::MostFree),
            Just(AllocPolicy::SplitEven),
            Just(AllocPolicy::Striped { chunk_bytes: 64 * MB }),
        ])
        .prop_map(|(size_mb, policy)| {
            let mut free = NodeFree::new(vec![512 * MB, 512 * MB]);
            VmMemoryLayout::allocate(size_mb * 16 * MB, policy, &mut free).unwrap()
        })
    }

    proptest! {
        #[test]
        fn allocation_conserves_bytes(layout in arb_layout()) {
            prop_assert_eq!(
                layout.node_bytes().iter().sum::<u64>(),
                layout.total_bytes()
            );
        }

        #[test]
        fn migration_conserves_bytes(
            layout in arb_layout(),
            a in 0.0f64..1.0,
            b in 0.0f64..1.0,
            budget_mb in 0u64..128,
            node in 0u16..2,
        ) {
            let mut layout = layout;
            let total = layout.total_bytes();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let start = (lo * total as f64) as u64;
            let end = (hi * total as f64) as u64;
            let before = layout.node_bytes();
            let moved = layout.migrate_range(start, end, NodeId::new(node), budget_mb * MB);
            let after = layout.node_bytes();
            prop_assert_eq!(after.iter().sum::<u64>(), total, "conservation");
            prop_assert!(moved <= budget_mb * MB, "budget respected");
            prop_assert!(moved <= end - start, "cannot move more than the range");
            // The target node never shrinks; others never grow.
            prop_assert!(after[node as usize] >= before[node as usize]);
            prop_assert_eq!(after[node as usize] - before[node as usize], moved);
        }

        #[test]
        fn migration_to_same_layout_is_idempotent(layout in arb_layout()) {
            let mut layout = layout;
            let total = layout.total_bytes();
            // Move everything to node 1, twice: second pass is a no-op.
            let first = layout.migrate_range(0, total, NodeId::new(1), u64::MAX);
            let second = layout.migrate_range(0, total, NodeId::new(1), u64::MAX);
            prop_assert!(first <= total);
            prop_assert_eq!(second, 0);
            prop_assert_eq!(layout.node_bytes()[1], total);
        }

        #[test]
        fn thread_distributions_always_sum_to_one(
            layout in arb_layout(),
            threads in 1usize..9,
            shared in 0.0f64..1.0,
        ) {
            for t in 0..threads {
                let d = layout.thread_access_distribution(t, threads, shared);
                let sum: f64 = d.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-9, "thread {t}: {d:?}");
            }
        }
    }
}
